// Crash/resume coverage — the PR's acceptance tests. A fault-injected suite
// (throws + a timeout) degrades to failure rows and a nonzero failure count;
// --resume re-runs exactly the failed rows and the merged artifact is
// byte-identical to an uninterrupted run, for every file sink. A SIGKILLed
// CLI subprocess leaves the durable PATH.tmp partial artifact, and resuming
// it completes to the same bytes. Torn text tails, schema-mismatched sqlite
// databases, and summarized artifacts are rejected with named errors.
#include "src/sim/resume.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/sim/fault.hpp"
#include "src/sim/suitefile.hpp"

#if defined(__unix__)
#include <csignal>
#include <sys/wait.h>
#endif

namespace colscore {
namespace {

// 18 runs: 6 cells (2 n x 3 adversaries) x 3 reps.
constexpr char kSuiteText[] = R"({
  "name": "resume-acceptance",
  "base": {"workload": "planted", "budget": 4, "dishonest": 4, "opt": false},
  "grids": ["n=48,64 x adversary=none,sleeper,random_liar"],
  "reps": 3,
  "threads": 1
})";

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

std::string temp_path(const std::string& name) {
  const std::string path = testing::TempDir() + name;
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  return path;
}

/// Runs the acceptance suite into `path` through `sink`, optionally fault
/// injected, optionally resuming `resume_from`.
std::vector<SuiteRun> run_acceptance(const std::string& sink,
                                     const std::string& path,
                                     const std::string& faults = "",
                                     const std::string& resume_from = "") {
  const SuiteFile file = parse_suite_file(kSuiteText, "resume.json");
  SuiteFileOverrides overrides;
  overrides.sink = sink;
  overrides.output = path;
  if (!faults.empty()) {
    overrides.faults = faults;
    overrides.timeout_s = 0.15;
  }
  if (!resume_from.empty()) overrides.resume = resume_from;
  return run_suite_file(file, overrides);
}

/// The acceptance contract for one sink: 2 throws + 1 manufactured timeout
/// leave 15 ok rows + 3 failure rows and a nonzero failure count; resume
/// re-runs only those 3 and the merged artifact is byte-identical to a
/// clean run's.
void check_sink_resume_equivalence(const std::string& sink,
                                   const std::string& suffix) {
  const std::string clean = temp_path("resume_clean" + suffix);
  const std::string faulty = temp_path("resume_faulty" + suffix);

  ASSERT_EQ(suite_failure_count(run_acceptance(sink, clean)), 0u);

  const std::vector<SuiteRun> first =
      run_acceptance(sink, faulty, "throw@3,throw@11,delay@7=0.6");
  ASSERT_EQ(first.size(), 18u);
  EXPECT_EQ(suite_failure_count(first), 3u);
  EXPECT_EQ(first[3].status, RunStatus::kFailed);
  EXPECT_EQ(first[11].status, RunStatus::kFailed);
  EXPECT_EQ(first[7].status, RunStatus::kTimeout);

  const std::vector<SuiteRun> second =
      run_acceptance(sink, faulty, "", faulty);
  EXPECT_EQ(suite_failure_count(second), 0u);
  // Exactly the 3 failed runs re-ran; the 15 complete rows were replayed.
  std::size_t reran = 0;
  for (const SuiteRun& run : second)
    if (run.status != RunStatus::kSkipped) ++reran;
  EXPECT_EQ(reran, 3u);

  EXPECT_EQ(read_file(faulty), read_file(clean)) << sink;
  std::remove(clean.c_str());
  std::remove(faulty.c_str());
}

TEST(ResumeEquivalence, JsonlMergesByteIdentical) {
  check_sink_resume_equivalence("jsonl", ".jsonl");
}

TEST(ResumeEquivalence, CsvMergesByteIdentical) {
  check_sink_resume_equivalence("csv", ".csv");
}

#if defined(COLSCORE_HAVE_SQLITE)
TEST(ResumeEquivalence, SqliteMergesByteIdentical) {
  check_sink_resume_equivalence("sqlite", ".sqlite");
}
#endif

// ---- torn tails -------------------------------------------------------------

TEST(ResumeTornTail, TruncatedJsonlLastLineIsReRun) {
  const std::string path = temp_path("resume_torn.jsonl");
  const std::string clean = temp_path("resume_torn_clean.jsonl");
  ASSERT_EQ(suite_failure_count(run_acceptance("jsonl", clean)), 0u);
  ASSERT_EQ(suite_failure_count(run_acceptance("jsonl", path)), 0u);

  // Crash mid-write: chop the final row somewhere inside, newline lost.
  const std::string full = read_file(path);
  const std::size_t cut = full.rfind('\n', full.size() - 2);
  ASSERT_NE(cut, std::string::npos);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << full.substr(0, cut + 1 + 20);  // 20 bytes of the torn row
  }

  const std::vector<SuiteRun> resumed =
      run_acceptance("jsonl", path, "", path);
  EXPECT_EQ(suite_failure_count(resumed), 0u);
  std::size_t reran = 0;
  for (const SuiteRun& run : resumed)
    if (run.status != RunStatus::kSkipped) ++reran;
  EXPECT_EQ(reran, 1u);  // only the torn row
  EXPECT_EQ(read_file(path), read_file(clean));
  std::remove(path.c_str());
  std::remove(clean.c_str());
}

// ---- named rejections -------------------------------------------------------

TEST(ResumeErrors, MissingArtifactIsNamed) {
  try {
    (void)run_acceptance("jsonl", temp_path("resume_missing.jsonl"), "",
                         "/nonexistent/prior.jsonl");
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    EXPECT_NE(std::string(e.what()).find("resume '"), std::string::npos)
        << e.what();
  }
}

TEST(ResumeErrors, ForeignArtifactRowsAreNamed) {
  // An artifact from a *different* sweep must not silently merge.
  const std::string path = temp_path("resume_foreign.jsonl");
  {
    const SuiteFile other = parse_suite_file(
        R"({"base": {"workload": "planted", "n": 96, "budget": 4,
                     "dishonest": 4, "opt": false},
            "reps": 3, "threads": 1})",
        "other.json");
    SuiteFileOverrides overrides;
    overrides.sink = "jsonl";
    overrides.output = path;
    (void)run_suite_file(other, overrides);
  }
  try {
    (void)run_acceptance("jsonl", path, "", path);
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    EXPECT_NE(
        std::string(e.what()).find("does not correspond to any planned run"),
        std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(ResumeErrors, SummarizedArtifactsCannotResume) {
  const SuiteFile file = parse_suite_file(kSuiteText, "resume.json");
  SuiteFileOverrides overrides;
  overrides.sink = "jsonl";
  overrides.output = temp_path("resume_summary.jsonl");
  overrides.resume = "whatever.jsonl";
  SuiteFile summarized = file;
  summarized.summary = SummaryStat::kMean;
  try {
    (void)run_suite_file(summarized, overrides);
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    EXPECT_NE(std::string(e.what()).find("summar"), std::string::npos)
        << e.what();
  }
}

#if defined(COLSCORE_HAVE_SQLITE)
TEST(ResumeErrors, MismatchedSqliteTableIsNamed) {
  // A pre-existing `runs` table with foreign columns must be rejected by
  // name, not silently interleaved (satellite: sqlite hardening).
  const std::string path = temp_path("resume_mismatch.sqlite");
  {
    SinkConfig config;
    config.path = path;
    MetricSchema foreign;
    foreign.add({"alpha", MetricType::kString, "", "test"});
    SqliteSink sink(config);
    sink.begin(foreign);
    sink.finish();
  }
  try {
    (void)run_acceptance("sqlite", temp_path("resume_mm_out.sqlite"), "",
                         path);
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("does not match the suite schema"), std::string::npos)
        << msg;
  }
  std::remove(path.c_str());
}
#endif

// ---- crash durability (SIGKILL a real subprocess) ---------------------------

#if defined(COLSCORE_CLI_PATH) && defined(__unix__)
TEST(CrashDurability, KilledCliLeavesAResumableTmpArtifact) {
  const std::string out = temp_path("resume_kill.csv");
  const std::string clean = temp_path("resume_kill_clean.csv");
  const std::string args =
      std::string(COLSCORE_CLI_PATH) +
      " --scenario 'workload=planted n=48 budget=4 dishonest=4 opt=0'"
      " --grid 'adversary=none,sleeper,random_liar' --threads 1 --sink csv";

  ASSERT_EQ(std::system((args + " --out " + clean).c_str()), 0);

  // kill@2: the process SIGKILLs itself as run 2 starts — no cleanup, no
  // rename; rows 0..1 must already be durable in PATH.tmp.
  const int status = std::system(("COLSCORE_FAULTS='kill@2' " + args +
                                  " --out " + out + " >/dev/null 2>&1")
                                     .c_str());
  // std::system goes through sh -c: depending on the shell, the child's
  // SIGKILL surfaces as a signal status or as exit code 128+9.
  const bool killed =
      (WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL) ||
      (WIFEXITED(status) && WEXITSTATUS(status) == 128 + SIGKILL);
  ASSERT_TRUE(killed) << status;
  std::ifstream tmp(out + ".tmp");
  EXPECT_TRUE(tmp.is_open()) << "durable partial artifact missing";
  tmp.close();

  ASSERT_EQ(std::system(
                (args + " --out " + out + " --resume " + out).c_str()),
            0);
  EXPECT_EQ(read_file(out), read_file(clean));
  std::remove(out.c_str());
  std::remove(clean.c_str());
}
#endif

}  // namespace
}  // namespace colscore
