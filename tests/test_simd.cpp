// Cross-checks every SIMD kernel tier against the scalar reference.
//
// The dispatcher's contract is that the tier only moves time, never output:
// for any input, every supported tier's popcount / hamming / hamming_exceeds
// / xor_into / extract_bits returns exactly what bitkernel::scalar returns.
// These tests exercise each tier's table directly (kernels_for) on
// randomized word counts spanning sub-vector, bulk (Harley-Seal blocks),
// and tail-only shapes, plus the extract_bits boundary zoo (every bit
// offset, missing-last-source-word, all-padding outputs), and the
// set_tier/env-cap plumbing the CI tier legs rely on.
//
// The CI matrix runs this binary once per forced tier (COLSCORE_SIMD=scalar
// and =avx2 where the runner supports it); on an AVX-512 box an unforced run
// covers all three tiers in one pass via the supported-tier loop.

#include "src/common/simd.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "src/common/bitkernels.hpp"
#include "src/common/rng.hpp"

namespace colscore {
namespace {

std::vector<simd::Tier> supported_tiers() {
  std::vector<simd::Tier> tiers;
  for (const simd::Tier t :
       {simd::Tier::kScalar, simd::Tier::kAvx2, simd::Tier::kAvx512})
    if (simd::tier_supported(t)) tiers.push_back(t);
  return tiers;
}

std::vector<std::uint64_t> random_words(std::size_t n, Rng& rng) {
  std::vector<std::uint64_t> w(n);
  for (auto& x : w) x = rng();
  return w;
}

/// Word counts that hit every loop shape: empty, tail-only, exactly one
/// vector at each width, the Harley-Seal 32-word block boundary, and bulky
/// sizes with every tail remainder.
const std::size_t kWordCounts[] = {0,  1,  2,  3,  4,  5,  7,  8,  9,  12,
                                   15, 16, 17, 24, 31, 32, 33, 37, 63, 64,
                                   65, 96, 100, 128, 129, 161};

TEST(Simd, PopcountMatchesScalarOnEveryTier) {
  Rng rng(11);
  for (const std::size_t words : kWordCounts) {
    const std::vector<std::uint64_t> w = random_words(words, rng);
    const std::size_t want = bitkernel::scalar::popcount(w.data(), words);
    for (const simd::Tier t : supported_tiers())
      EXPECT_EQ(simd::kernels_for(t).popcount(w.data(), words), want)
          << simd::tier_name(t) << " words=" << words;
  }
}

TEST(Simd, HammingMatchesScalarOnEveryTier) {
  Rng rng(12);
  for (const std::size_t words : kWordCounts) {
    const std::vector<std::uint64_t> a = random_words(words, rng);
    std::vector<std::uint64_t> b = a;
    // Half the runs compare near-identical vectors (sparse XOR), half
    // independent ones — both matter for the carry-save accumulation.
    if (words % 2 == 0)
      for (std::size_t i = 0; i < words; i += 3) b[i] ^= 1ULL << (i % 64);
    else
      b = random_words(words, rng);
    const std::size_t want = bitkernel::scalar::hamming(a.data(), b.data(), words);
    for (const simd::Tier t : supported_tiers())
      EXPECT_EQ(simd::kernels_for(t).hamming(a.data(), b.data(), words), want)
          << simd::tier_name(t) << " words=" << words;
  }
}

TEST(Simd, HammingExceedsAgreesAtEveryThreshold) {
  // The early exit must never change the boolean: sweep thresholds around
  // the true distance, including the exact boundary (d > t is strict).
  Rng rng(13);
  for (const std::size_t words : {1ul, 7ul, 8ul, 16ul, 33ul, 64ul, 100ul}) {
    const std::vector<std::uint64_t> a = random_words(words, rng);
    const std::vector<std::uint64_t> b = random_words(words, rng);
    const std::size_t d = bitkernel::scalar::hamming(a.data(), b.data(), words);
    for (const std::size_t t :
         {std::size_t{0}, d > 0 ? d - 1 : 0, d, d + 1, d + 100}) {
      const bool want = d > t;
      for (const simd::Tier tier : supported_tiers())
        EXPECT_EQ(
            simd::kernels_for(tier).hamming_exceeds(a.data(), b.data(), words, t),
            want)
            << simd::tier_name(tier) << " words=" << words << " thr=" << t;
    }
  }
}

TEST(Simd, HammingExceedsEarlyExitDoesNotMiscount) {
  // All the difference concentrated in the first vector block: every tier
  // exits early there, and the answer must still match a distance that only
  // just crosses (or only just misses) the threshold.
  std::vector<std::uint64_t> a(40, 0), b(40, 0);
  b[0] = ~0ULL;  // distance exactly 64
  for (const simd::Tier t : supported_tiers()) {
    const simd::Kernels& k = simd::kernels_for(t);
    EXPECT_TRUE(k.hamming_exceeds(a.data(), b.data(), 40, 63));
    EXPECT_FALSE(k.hamming_exceeds(a.data(), b.data(), 40, 64));
  }
}

TEST(Simd, XorIntoMatchesScalarOnEveryTier) {
  Rng rng(14);
  for (const std::size_t words : kWordCounts) {
    const std::vector<std::uint64_t> base = random_words(words, rng);
    const std::vector<std::uint64_t> src = random_words(words, rng);
    std::vector<std::uint64_t> want = base;
    bitkernel::scalar::xor_into(want.data(), src.data(), words);
    for (const simd::Tier t : supported_tiers()) {
      std::vector<std::uint64_t> got = base;
      simd::kernels_for(t).xor_into(got.data(), src.data(), words);
      EXPECT_EQ(got, want) << simd::tier_name(t) << " words=" << words;
    }
  }
}

TEST(Simd, ExtractBitsMatchesScalarEverywhere) {
  // Every bit offset x a spread of lengths, against sources barely long
  // enough — this covers the missing-last-source-word path (the vector loops
  // must stop before reading past src and hand off to the shared tail) and
  // sub-word / all-padding outputs.
  Rng rng(15);
  const std::size_t src_bits = 64 * 24;
  const std::vector<std::uint64_t> src = random_words(24, rng);
  for (std::size_t off = 0; off < 64; ++off) {
    for (const std::size_t n :
         {std::size_t{1}, std::size_t{5}, std::size_t{63}, std::size_t{64},
          std::size_t{65}, std::size_t{500}, std::size_t{512},
          src_bits - off}) {
      if (off + n > src_bits) continue;
      const std::size_t out_words = bitkernel::word_count(n);
      std::vector<std::uint64_t> want(out_words, ~0ULL);
      bitkernel::scalar::extract_bits(src.data(), src.size(), off, n, want.data());
      for (const simd::Tier t : supported_tiers()) {
        std::vector<std::uint64_t> got(out_words, ~0ULL);
        simd::kernels_for(t).extract_bits(src.data(), src.size(), off, n,
                                          got.data());
        EXPECT_EQ(got, want)
            << simd::tier_name(t) << " off=" << off << " n=" << n;
      }
      // Padding invariant: bits past n in the last word are zero.
      const std::size_t rem = n % 64;
      if (rem != 0)
        EXPECT_EQ(want[out_words - 1] & ~bitkernel::low_mask(rem), 0u);
    }
  }
}

TEST(Simd, ExtractBitsZeroLengthWritesNothing) {
  const std::vector<std::uint64_t> src(4, ~0ULL);
  for (const simd::Tier t : supported_tiers()) {
    std::uint64_t sentinel = 0xdeadbeefULL;
    simd::kernels_for(t).extract_bits(src.data(), src.size(), 17, 0, &sentinel);
    EXPECT_EQ(sentinel, 0xdeadbeefULL) << simd::tier_name(t);
  }
}

TEST(Simd, SetTierSwitchesTheDispatchedEntryPoints) {
  Rng rng(16);
  const std::size_t words = 64;  // above kDispatchMinWords: dispatch engages
  const std::vector<std::uint64_t> a = random_words(words, rng);
  const std::vector<std::uint64_t> b = random_words(words, rng);
  const std::size_t want = bitkernel::scalar::hamming(a.data(), b.data(), words);
  const simd::Tier before = simd::active_tier();
  for (const simd::Tier t : supported_tiers()) {
    ASSERT_TRUE(simd::set_tier(t));
    EXPECT_EQ(simd::active_tier(), t);
    EXPECT_EQ(bitkernel::hamming(a.data(), b.data(), words), want);
    EXPECT_EQ(bitkernel::popcount(a.data(), words),
              bitkernel::scalar::popcount(a.data(), words));
  }
  ASSERT_TRUE(simd::set_tier(before));
}

TEST(Simd, UnsupportedTierIsRejectedAndFallsBackToScalar) {
  // Under COLSCORE_SIMD=scalar (the CI leg) the AVX tiers must report
  // unsupported, set_tier must refuse them, and kernels_for must hand back
  // the scalar table instead of one that would fault.
  for (const simd::Tier t : {simd::Tier::kAvx2, simd::Tier::kAvx512}) {
    if (simd::tier_supported(t)) continue;
    EXPECT_FALSE(simd::set_tier(t));
    EXPECT_EQ(&simd::kernels_for(t), &simd::kernels_for(simd::Tier::kScalar));
  }
  EXPECT_TRUE(simd::tier_supported(simd::Tier::kScalar));
}

TEST(Simd, DetectedTierHonorsEnvCap) {
  // The test can't re-exec itself, but it can check consistency: whatever
  // COLSCORE_SIMD says, detected_tier() must not exceed it.
  const char* env = std::getenv("COLSCORE_SIMD");
  if (env == nullptr) GTEST_SKIP() << "COLSCORE_SIMD not set";
  const std::string cap(env);
  if (cap == "scalar")
    EXPECT_EQ(simd::detected_tier(), simd::Tier::kScalar);
  else if (cap == "avx2")
    EXPECT_LE(static_cast<int>(simd::detected_tier()),
              static_cast<int>(simd::Tier::kAvx2));
}

TEST(Simd, DispatchedEntryPointsMatchScalarBelowAndAboveTheGate) {
  // The size gate (kDispatchMinWords) must be output-invisible.
  Rng rng(17);
  for (const std::size_t words :
       {std::size_t{1}, simd::kDispatchMinWords - 1, simd::kDispatchMinWords,
        simd::kDispatchMinWords + 1, std::size_t{64}}) {
    const std::vector<std::uint64_t> a = random_words(words, rng);
    const std::vector<std::uint64_t> b = random_words(words, rng);
    EXPECT_EQ(bitkernel::hamming(a.data(), b.data(), words),
              bitkernel::scalar::hamming(a.data(), b.data(), words));
    EXPECT_EQ(bitkernel::popcount(a.data(), words),
              bitkernel::scalar::popcount(a.data(), words));
  }
}

}  // namespace
}  // namespace colscore
