// Tests for the small common utilities: CSV emission, logging levels, math
// helpers, and the protocol environment glue.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "src/common/csv.hpp"
#include "src/common/log.hpp"
#include "src/common/mathutil.hpp"
#include "tests/test_util.hpp"

namespace colscore {
namespace {

TEST(Csv, HeaderAndRows) {
  std::ostringstream os;
  CsvWriter w(os, {"a", "b", "c"});
  w.row({"1", "2", "3"});
  w.row_values(4, 5.5, "six");
  EXPECT_EQ(os.str(), "a,b,c\n1,2,3\n4,5.5,six\n");
  EXPECT_EQ(w.rows_written(), 2u);
}

TEST(Csv, QuotesSpecialCharacters) {
  std::ostringstream os;
  CsvWriter w(os, {"x", "y"});
  w.row({"has,comma", "has\"quote"});
  EXPECT_EQ(os.str(), "x,y\n\"has,comma\",\"has\"\"quote\"\n");
}

TEST(Csv, RowWidthEnforced) {
  std::ostringstream os;
  CsvWriter w(os, {"only"});
  EXPECT_DEATH(w.row({"a", "b"}), "width");
}

TEST(Log, LevelGate) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  // Below-threshold messages are cheap no-ops (no observable effect, but the
  // call must be safe from any thread).
  log_debug("dropped ", 42);
  log_info("dropped too");
  set_log_level(before);
}

TEST(Log, SetAndRestore) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(before);
  EXPECT_EQ(log_level(), before);
}

TEST(MathUtil, Log2Ceil) {
  EXPECT_EQ(log2_ceil(0), 1u);
  EXPECT_EQ(log2_ceil(1), 1u);
  EXPECT_EQ(log2_ceil(2), 1u);
  EXPECT_EQ(log2_ceil(3), 2u);
  EXPECT_EQ(log2_ceil(4), 2u);
  EXPECT_EQ(log2_ceil(5), 3u);
  EXPECT_EQ(log2_ceil(1024), 10u);
  EXPECT_EQ(log2_ceil(1025), 11u);
}

TEST(MathUtil, LnClamped) {
  EXPECT_DOUBLE_EQ(ln_clamped(1), 1.0);
  EXPECT_DOUBLE_EQ(ln_clamped(2), 1.0);  // ln 2 < 1 clamps
  EXPECT_NEAR(ln_clamped(1024), 6.93147, 1e-4);
}

TEST(MathUtil, CeilSize) {
  EXPECT_EQ(ceil_size(0.0), 1u);
  EXPECT_EQ(ceil_size(0.2), 1u);
  EXPECT_EQ(ceil_size(1.0), 1u);
  EXPECT_EQ(ceil_size(1.1), 2u);
  EXPECT_EQ(ceil_size(7.9), 8u);
}

TEST(ProtocolEnv, OwnProbeChargesHonestOnly) {
  testutil::Harness h(identical_clusters(4, 8, 1, Rng(1)));
  h.population.set_behavior(1, std::make_unique<Inverter>());
  (void)h.env.own_probe(0, 3);
  (void)h.env.own_probe(1, 3);
  EXPECT_EQ(h.oracle.probes_by(0), 1u);
  EXPECT_EQ(h.oracle.probes_by(1), 0u);
}

TEST(ProtocolEnv, OwnProbeAlwaysTruthful) {
  // own_probe is a player privately learning its own bit — even for a liar
  // the returned value is its true preference (lying happens at report
  // time, not at probe time).
  testutil::Harness h(identical_clusters(4, 8, 1, Rng(2)));
  h.population.set_behavior(1, std::make_unique<Inverter>());
  EXPECT_EQ(h.env.own_probe(1, 5), h.world.matrix.preference(1, 5));
}

TEST(ProtocolEnv, LocalRngStableAcrossCalls) {
  testutil::Harness h(identical_clusters(2, 4, 1, Rng(3)));
  Rng a = h.env.local_rng(0, 42);
  Rng b = h.env.local_rng(0, 42);
  EXPECT_EQ(a(), b());
  Rng c = h.env.local_rng(1, 42);
  Rng d = h.env.local_rng(0, 43);
  EXPECT_NE(a(), c());
  EXPECT_NE(b(), d());
}

TEST(ProtocolEnv, FreshPhaseNeverRepeats) {
  testutil::Harness h(identical_clusters(2, 4, 1, Rng(4)));
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(h.env.fresh_phase());
  EXPECT_EQ(seen.size(), 100u);
}

TEST(ProtocolEnv, SharedRngComesFromBeacon) {
  testutil::Harness h(identical_clusters(2, 4, 1, Rng(5)));
  Rng direct = h.beacon.rng_for(7);
  Rng via = h.env.shared_rng(7);
  EXPECT_EQ(direct(), via());
}

}  // namespace
}  // namespace colscore
