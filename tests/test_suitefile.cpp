// Suite-file coverage: parsing the checked-in JSON sweep format, the
// documented validation errors (malformed documents, unknown keys,
// wrong-typed values, reps-axis misuse), and the determinism contract — a
// suite file runs byte-identical to the equivalent grid invocation.
#include "src/sim/suitefile.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

namespace colscore {
namespace {

constexpr char kSmokeText[] = R"({
  "name": "smoke",
  "description": "tiny sweep",
  "base": {"workload": "planted", "budget": 4, "diameter": 8,
           "dishonest": 4, "opt": false},
  "grids": ["n=48,64 x adversary=none,sleeper"],
  "reps": 2,
  "threads": 1,
  "sink": "jsonl",
  "output": "smoke.jsonl"
})";

TEST(SuiteFile, ParsesTheDocumentedFormat) {
  const SuiteFile file = parse_suite_file(kSmokeText, "smoke.json");
  EXPECT_EQ(file.name, "smoke");
  EXPECT_EQ(file.description, "tiny sweep");
  EXPECT_EQ(file.base.workload, "planted");
  EXPECT_EQ(file.base.overrides.at("budget"), "4");
  EXPECT_EQ(file.base.overrides.at("opt"), "0");  // bool -> "0"
  ASSERT_EQ(file.grids.size(), 1u);
  EXPECT_EQ(file.grids[0].size(), 2u);
  EXPECT_EQ(file.reps, 2u);
  EXPECT_EQ(file.threads, 1u);
  EXPECT_EQ(file.sink, "jsonl");
  EXPECT_EQ(file.output, "smoke.jsonl");
  EXPECT_FALSE(file.include_wall);
  EXPECT_TRUE(file.derive_seeds);
  EXPECT_EQ(file.expand().size(), 4u);  // 2 n x 2 adversaries (reps at run time)
}

TEST(SuiteFile, BaseAcceptsASpecString) {
  const SuiteFile file = parse_suite_file(
      R"({"base": "workload=planted n=64 dishonest=4 opt=0",
          "grids": "adversary=none,sleeper"})",
      "spec-string.json");
  EXPECT_EQ(file.base.overrides.at("n"), "64");
  ASSERT_EQ(file.grids.size(), 1u);  // single string promotes to one grid
  EXPECT_EQ(file.expand().size(), 2u);
}

TEST(SuiteFile, MultipleGridsConcatenateInOrder) {
  const SuiteFile file = parse_suite_file(
      R"({"base": {"opt": false, "n": 48, "budget": 4},
          "grids": ["adversary=none,sleeper", "workload=uniform,two_blocks"]})",
      "multi.json");
  const std::vector<ScenarioSpec> specs = file.expand();
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].adversary, "none");
  EXPECT_EQ(specs[1].adversary, "sleeper");
  EXPECT_EQ(specs[2].workload, "uniform");
  EXPECT_EQ(specs[3].workload, "two_blocks");
}

TEST(SuiteFile, NoGridsMeansOneRunOfBase) {
  const SuiteFile file =
      parse_suite_file(R"({"base": {"n": 48, "opt": false}})", "single.json");
  EXPECT_EQ(file.expand().size(), 1u);
}

// ---- documented error strings ----------------------------------------------

/// EXPECTs that parsing `text` throws a ScenarioError mentioning every
/// `needle` (all errors are prefixed with the origin label).
void expect_parse_error(const std::string& text,
                        const std::vector<std::string>& needles) {
  try {
    (void)parse_suite_file(text, "bad.json");
    FAIL() << "expected ScenarioError for: " << text;
  } catch (const ScenarioError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("suite file 'bad.json'"), std::string::npos) << msg;
    for (const std::string& needle : needles)
      EXPECT_NE(msg.find(needle), std::string::npos)
          << "missing '" << needle << "' in: " << msg;
  }
}

TEST(SuiteFile, MalformedJsonNamesTheLine) {
  expect_parse_error("{\n  \"name\": \"x\",\n  oops\n}", {"line 3"});
  expect_parse_error("", {"json"});
}

TEST(SuiteFile, DocumentMustBeAnObject) {
  expect_parse_error("[1, 2]", {"must be an object", "array"});
}

TEST(SuiteFile, UnknownKeysAreRejectedWithTheAcceptedList) {
  expect_parse_error(R"({"grid": "n=1,2"})", {"unknown key \"grid\"", "grids"});
}

TEST(SuiteFile, WrongTypedValuesNameKeyAndKinds) {
  expect_parse_error(R"({"reps": "2"})",
                     {"\"reps\" must be an integer", "got string"});
  expect_parse_error(R"({"reps": 2.5})", {"\"reps\"", "non-negative integer"});
  expect_parse_error(R"({"reps": 0})", {"\"reps\" must be a positive integer"});
  expect_parse_error(R"({"wall": 1})", {"\"wall\" must be a boolean"});
  expect_parse_error(R"({"sink": 3})", {"\"sink\" must be a string"});
  expect_parse_error(R"({"base": 7})",
                     {"\"base\" must be an object or a spec string"});
  expect_parse_error(R"({"base": {"n": [1]}})",
                     {"base key \"n\"", "got array"});
  expect_parse_error(R"({"grids": [42]})", {"\"grids\" entries", "number"});
}

TEST(SuiteFile, RepsAxisInsideAGridPointsAtTheTopLevelKey) {
  expect_parse_error(R"({"base": {"opt": false}, "grids": ["n=48 x reps=3"]})",
                     {"grid 1 sweeps 'reps'", "top-level \"reps\" key"});
}

TEST(SuiteFile, SpecErrorsSurfaceAtParseTimeWithTheFileNamed) {
  // Unknown workload: the registry error comes wrapped with the origin.
  expect_parse_error(R"({"base": {"workload": "martian"}})",
                     {"unknown workload 'martian'"});
  // Wrong-typed override value inside the base spec.
  expect_parse_error(R"({"base": {"n": "abc"}})",
                     {"override 'n=abc'", "unsigned integer"});
  // Unknown override key in a grid axis.
  expect_parse_error(R"({"base": {"opt": false}, "grids": ["frob=1,2"]})",
                     {"unknown override key 'frob'"});
}

TEST(SuiteFile, LoadReportsUnreadablePaths) {
  EXPECT_THROW((void)load_suite_file("/nonexistent/nope.json"), ScenarioError);
}

// ---- running ----------------------------------------------------------------

TEST(SuiteFile, RunsMatchTheEquivalentGridInvocation) {
  const SuiteFile file = parse_suite_file(
      R"({"base": {"workload": "planted", "budget": 4, "diameter": 8,
                   "dishonest": 4, "opt": false},
          "grids": ["n=48 x adversary=none,sleeper"],
          "reps": 2, "threads": 1, "sink": "csv"})",
      "equiv.json");

  std::ostringstream from_file;
  SuiteFileOverrides overrides;
  overrides.stream = &from_file;
  const std::vector<SuiteRun> runs = run_suite_file(file, overrides);
  ASSERT_EQ(runs.size(), 4u);  // 2 cells x 2 reps
  for (std::size_t i = 0; i < runs.size(); ++i) EXPECT_EQ(runs[i].index, i);

  // The same sweep spelled as a grid over the same base.
  ScenarioSpec base;
  base.set("budget", "4").set("diameter", "8").set("dishonest", "4")
      .set("opt", "0");
  std::ostringstream from_grid;
  CsvWriter writer(from_grid, suite_csv_columns(false, /*include_rep=*/true));
  SuiteOptions options;
  options.threads = 1;
  options.reps = 2;
  options.on_result = [&](const SuiteRun& run) {
    suite_csv_row(writer, run, false, /*include_rep=*/true);
  };
  SuiteRunner(options).run(
      expand_grid(base, parse_grid("n=48 x adversary=none,sleeper")));

  EXPECT_FALSE(from_file.str().empty());
  EXPECT_EQ(from_file.str(), from_grid.str());
}

TEST(SuiteFile, CliOverridesBeatTheFilesChoices) {
  const SuiteFile file = parse_suite_file(
      R"({"base": {"n": 48, "budget": 4, "opt": false}, "sink": "csv",
          "threads": 1})",
      "override.json");
  std::ostringstream out;
  SuiteFileOverrides overrides;
  overrides.stream = &out;
  overrides.sink = "jsonl";
  (void)run_suite_file(file, overrides);
  // JSONL, not CSV: first byte is '{' and there is no header line.
  ASSERT_FALSE(out.str().empty());
  EXPECT_EQ(out.str()[0], '{');
  EXPECT_EQ(out.str().find("workload,"), std::string::npos);
}

TEST(SuiteFile, UnknownSinkFailsWithRegisteredAlternatives) {
  const SuiteFile file = parse_suite_file(
      R"({"base": {"n": 48, "opt": false}, "sink": "parquet"})", "sink.json");
  try {
    (void)run_suite_file(file);
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown sink 'parquet'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("jsonl"), std::string::npos) << msg;
  }
}

TEST(SuiteFile, CheckedInSmokeSuiteStaysValid) {
  // The CI workflow depends on examples/suites/smoke.json expanding to 8
  // runs; keep the artifact and this expectation in sync. ctest runs from
  // the build directory, so try one level up too.
  std::ifstream in("examples/suites/smoke.json");
  if (!in.is_open()) in.open("../examples/suites/smoke.json");
  if (!in.is_open()) GTEST_SKIP() << "run from the repo root to check";
  std::ostringstream text;
  text << in.rdbuf();
  const SuiteFile file = parse_suite_file(text.str(), "smoke.json");
  EXPECT_EQ(file.expand().size() * file.reps, 8u);
  EXPECT_EQ(file.sink, "jsonl");
}

}  // namespace
}  // namespace colscore
