// Property-style sweeps over (n, B, D, seed, adversary mix): protocol
// contracts that must hold across the whole parameter grid, exercised with
// parameterized gtest suites.
#include <gtest/gtest.h>

#include "src/common/exec_policy.hpp"
#include "src/common/thread_pool.hpp"
#include "src/core/calculate_preferences.hpp"
#include "src/metrics/error.hpp"
#include "src/metrics/optimal.hpp"
#include "tests/test_util.hpp"

namespace colscore {
namespace {

using testutil::Harness;

// ---------------------------------------------------------------------------
// Property: honest error stays O(D) across the grid (Lemma 12 / Theorem 14).
// ---------------------------------------------------------------------------
struct GridCase {
  std::size_t n;
  std::size_t budget;
  std::size_t diameter;
  std::uint64_t seed;
};

class ErrorBoundGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(ErrorBoundGrid, HonestErrorBounded) {
  const GridCase c = GetParam();
  Harness h(planted_clusters(c.n, c.n, c.budget, c.diameter, Rng(c.seed)));
  Params params = Params::practical(c.budget);
  const ProtocolResult r = calculate_preferences(h.env, params, c.seed);
  const auto honest = h.population.honest_players();
  const auto errors = hamming_errors(h.world.matrix, r.outputs, honest);
  const std::size_t worst = *std::max_element(errors.begin(), errors.end());
  EXPECT_LE(worst, std::max<std::size_t>(3 * c.diameter, 8))
      << "n=" << c.n << " B=" << c.budget << " D=" << c.diameter
      << " seed=" << c.seed;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ErrorBoundGrid,
    ::testing::Values(GridCase{128, 4, 4, 1}, GridCase{128, 4, 16, 2},
                      GridCase{128, 8, 8, 3}, GridCase{256, 8, 8, 4},
                      GridCase{256, 8, 24, 5}, GridCase{256, 4, 16, 6},
                      GridCase{192, 6, 12, 7}, GridCase{256, 16, 8, 8}));

// ---------------------------------------------------------------------------
// Property: Byzantine tolerance at the n/(3B) bound for every strategy.
// ---------------------------------------------------------------------------
struct ByzCase {
  std::size_t n;
  std::size_t budget;
  std::size_t diameter;
  int strategy;  // 0=liar 1=inverter 2=sleeper 3=constant
  std::uint64_t seed;
};

class ByzantineGrid : public ::testing::TestWithParam<ByzCase> {};

std::unique_ptr<Behavior> make_strategy(int which) {
  switch (which) {
    case 0: return std::make_unique<RandomLiar>();
    case 1: return std::make_unique<Inverter>();
    case 2: return std::make_unique<Sleeper>();
    default: return std::make_unique<ConstantReporter>(true);
  }
}

TEST_P(ByzantineGrid, ToleranceAtPaperBound) {
  const ByzCase c = GetParam();
  Harness h(planted_clusters(c.n, c.n, c.budget, c.diameter, Rng(c.seed)));
  Rng rng(c.seed * 31);
  h.population.corrupt_random(c.n / (3 * c.budget), rng,
                              [&] { return make_strategy(c.strategy); });
  Params params = Params::practical(c.budget);
  const ProtocolResult r = calculate_preferences(h.env, params, c.seed);
  const auto honest = h.population.honest_players();
  const auto errors = hamming_errors(h.world.matrix, r.outputs, honest);
  const std::size_t worst = *std::max_element(errors.begin(), errors.end());
  EXPECT_LE(worst, std::max<std::size_t>(4 * c.diameter, 10))
      << "strategy=" << c.strategy << " seed=" << c.seed;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ByzantineGrid,
    ::testing::Values(ByzCase{256, 8, 8, 0, 11}, ByzCase{256, 8, 8, 1, 12},
                      ByzCase{256, 8, 8, 2, 13}, ByzCase{256, 8, 8, 3, 14},
                      ByzCase{128, 4, 12, 0, 15}, ByzCase{128, 4, 12, 1, 16},
                      ByzCase{128, 4, 12, 2, 17}, ByzCase{128, 4, 12, 3, 18}));

// ---------------------------------------------------------------------------
// Property: honest players never exceed the tracked budget envelope; probe
// accounting is exact; board integrity holds (Lemmas 10-11).
// ---------------------------------------------------------------------------
class AccountingGrid : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AccountingGrid, ProbeAccountingAndBoardIntegrity) {
  const std::uint64_t seed = GetParam();
  Harness h(planted_clusters(128, 128, 4, 8, Rng(seed)));
  Rng rng(seed + 1);
  h.population.corrupt_random(8, rng, [] { return std::make_unique<RandomLiar>(); });
  Params params = Params::practical(4);
  const ProtocolResult r = calculate_preferences(h.env, params, seed);

  // (a) exact accounting
  std::uint64_t total = 0;
  for (auto c : r.probes_by_player) total += c;
  EXPECT_EQ(total, r.total_probes);
  EXPECT_EQ(total, h.env.oracle.total_probes());

  // (b) dishonest players never pay for probes
  for (PlayerId p : h.population.dishonest_players())
    EXPECT_EQ(r.probes_by_player[p], 0u);

  // (c) probe bill is far below probing everything log n times over
  EXPECT_LT(r.max_probes, 128u * 14u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AccountingGrid, ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// Property: determinism across thread counts (HPC requirement — results must
// not depend on the parallel schedule).
// ---------------------------------------------------------------------------
class ThreadDeterminism : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ThreadDeterminism, SameOutputsAnyThreadCount) {
  ThreadPool pool(GetParam());
  Harness h(planted_clusters(128, 128, 4, 8, Rng(42)), 0xbeac0ULL,
            ExecPolicy::pool(pool));
  Params params = Params::practical(4);
  const ProtocolResult r = calculate_preferences(h.env, params, 99);
  // Fingerprint the outputs; compare against the single-thread reference.
  std::uint64_t fingerprint = 0;
  for (const auto& v : r.outputs) fingerprint ^= v.content_hash() * 0x9e3779b97f4a7c15ULL;

  Harness ref(planted_clusters(128, 128, 4, 8, Rng(42)), 0xbeac0ULL,
              ExecPolicy::serial());
  const ProtocolResult rr = calculate_preferences(ref.env, params, 99);
  std::uint64_t ref_fingerprint = 0;
  for (const auto& v : rr.outputs)
    ref_fingerprint ^= v.content_hash() * 0x9e3779b97f4a7c15ULL;

  EXPECT_EQ(fingerprint, ref_fingerprint);
  EXPECT_EQ(r.total_probes, rr.total_probes);
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadDeterminism, ::testing::Values(1, 2, 4, 8));

// ---------------------------------------------------------------------------
// Property: beyond the tolerance bound the protocol is allowed to degrade —
// and with a hostile-majority cluster it must (failure injection; the bound
// is load-bearing, not slack).
// ---------------------------------------------------------------------------
TEST(FailureInjection, MassiveCorruptionBreaksPredictions) {
  const std::size_t n = 128, B = 4;
  Harness h(planted_clusters(n, n, B, 8, Rng(77)));
  Rng rng(78);
  h.population.corrupt_random(n * 2 / 3, rng,
                              [] { return std::make_unique<Inverter>(); });
  Params params = Params::practical(B);
  const ProtocolResult r = calculate_preferences(h.env, params, 100);
  const auto honest = h.population.honest_players();
  const auto errors = hamming_errors(h.world.matrix, r.outputs, honest);
  const std::size_t worst = *std::max_element(errors.begin(), errors.end());
  EXPECT_GT(worst, 16u);  // way past any O(D) bound
}

// ---------------------------------------------------------------------------
// Property: RSelect's final choice never loses to the best candidate by more
// than a constant factor, measured against the empirical OPT bracket.
// ---------------------------------------------------------------------------
class OptimalityGrid : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptimalityGrid, ApproxRatioBounded) {
  const std::uint64_t seed = GetParam();
  Harness h(planted_clusters(192, 192, 6, 16, Rng(seed)));
  Params params = Params::practical(6);
  const ProtocolResult r = calculate_preferences(h.env, params, seed + 7);
  const auto honest = h.population.honest_players();
  const auto errors = hamming_errors(h.world.matrix, r.outputs, honest);
  const OptEstimate opt = opt_radius(h.world.matrix, 192 / 6);
  // Constant-factor optimality: generous constant for laptop-scale n.
  EXPECT_LE(worst_approx_ratio(errors, honest, opt), 12.0) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimalityGrid, ::testing::Values(21, 22, 23));

}  // namespace
}  // namespace colscore
