#include "src/model/generators.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace colscore {
namespace {

TEST(IdenticalClusters, MembersAreExactTwins) {
  const World w = identical_clusters(64, 64, 4, Rng(1));
  EXPECT_EQ(w.n_players(), 64u);
  EXPECT_EQ(w.n_clusters, 4u);
  EXPECT_EQ(w.planted_diameter, 0u);
  for (std::uint32_t c = 0; c < 4; ++c) {
    const auto members = w.cluster_members(c);
    EXPECT_EQ(members.size(), 16u);
    for (PlayerId p : members)
      EXPECT_EQ(w.matrix.distance(members[0], p), 0u);
  }
}

TEST(IdenticalClusters, DifferentClustersDiffer) {
  const World w = identical_clusters(32, 128, 2, Rng(2));
  const auto a = w.cluster_members(0);
  const auto b = w.cluster_members(1);
  // Random 128-bit centers collide with probability 2^-128.
  EXPECT_GT(w.matrix.distance(a[0], b[0]), 0u);
}

TEST(PlantedClusters, DiameterRespected) {
  const std::size_t D = 20;
  const World w = planted_clusters(60, 200, 3, D, Rng(3));
  EXPECT_EQ(w.planted_diameter, D);
  for (std::uint32_t c = 0; c < 3; ++c) {
    const auto members = w.cluster_members(c);
    EXPECT_LE(w.matrix.diameter(members), D);
  }
}

TEST(PlantedClusters, EveryPlayerAssigned) {
  const World w = planted_clusters(50, 50, 5, 4, Rng(4));
  for (PlayerId p = 0; p < 50; ++p) EXPECT_NE(w.cluster_of[p], kNoCluster);
  EXPECT_GE(w.min_cluster_size(), 10u);
}

TEST(PlantedClusters, ZeroDiameterEqualsIdentical) {
  const World w = planted_clusters(30, 100, 3, 0, Rng(5));
  for (std::uint32_t c = 0; c < 3; ++c) {
    const auto members = w.cluster_members(c);
    for (PlayerId p : members) EXPECT_EQ(w.matrix.distance(members[0], p), 0u);
  }
}

TEST(PlantedClusters, ZipfSizesSkewed) {
  const World w = planted_clusters(1000, 100, 5, 4, Rng(6), /*zipf=*/true);
  std::vector<std::size_t> sizes(5, 0);
  for (auto c : w.cluster_of) ++sizes[c];
  EXPECT_GT(sizes[0], sizes[4]);  // rank-1 cluster much larger
  EXPECT_GE(*std::min_element(sizes.begin(), sizes.end()), 1u);
  EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), std::size_t{0}), 1000u);
}

TEST(LowerBound, PivotGroupStructure) {
  const std::size_t n = 128, B = 8, D = 16;
  const World w = lower_bound_instance(n, B, D, Rng(7));
  const std::size_t group = n / B;
  // Group members agree with the pivot outside S: distance <= D.
  for (PlayerId q = 1; q < group; ++q) EXPECT_LE(w.matrix.distance(0, q), D);
  // Background players are ~n/2 away.
  std::size_t near_background = 0;
  for (PlayerId q = static_cast<PlayerId>(group); q < n; ++q)
    if (w.matrix.distance(0, q) < n / 4) ++near_background;
  EXPECT_EQ(near_background, 0u);
}

TEST(LowerBound, ClusterMetadata) {
  const World w = lower_bound_instance(64, 4, 8, Rng(8));
  const auto members = w.cluster_members(0);
  EXPECT_EQ(members.size(), 16u);  // n/B
  EXPECT_EQ(w.cluster_of[0], 0u);
  EXPECT_EQ(w.cluster_of[20], kNoCluster);
}

TEST(ChainedClusters, AdjacentLinksAtStep) {
  const World w = chained_clusters(80, 400, 8, 10, Rng(9));
  EXPECT_EQ(w.n_clusters, 8u);
  // Center distance between links i and j is exactly |i-j| * step.
  for (std::uint32_t i = 0; i < 8; ++i) {
    for (std::uint32_t j = 0; j < 8; ++j) {
      const auto a = w.cluster_members(i);
      const auto b = w.cluster_members(j);
      EXPECT_EQ(w.matrix.distance(a[0], b[0]),
                static_cast<std::size_t>(i > j ? i - j : j - i) * 10u);
    }
  }
}

TEST(ChainedClusters, RejectsOverlongChain) {
  EXPECT_DEATH(chained_clusters(10, 20, 5, 10, Rng(10)), "chain");
}

TEST(UniformRandom, NoStructure) {
  const World w = uniform_random(40, 1000, Rng(11));
  EXPECT_EQ(w.n_clusters, 0u);
  // Random pairs are near n/2 apart.
  for (PlayerId p = 1; p < 10; ++p) {
    const std::size_t d = w.matrix.distance(0, p);
    EXPECT_GT(d, 350u);
    EXPECT_LT(d, 650u);
  }
}

TEST(TwoBlocks, MaximallySeparated) {
  const World w = two_blocks(20, 64, Rng(12));
  EXPECT_EQ(w.matrix.distance(0, 1), 0u);
  EXPECT_EQ(w.matrix.distance(0, 19), 64u);  // complement
  EXPECT_EQ(w.cluster_of[0], 0u);
  EXPECT_EQ(w.cluster_of[19], 1u);
}

TEST(World, ClusterMembersAndMinSize) {
  const World w = identical_clusters(10, 10, 3, Rng(13));
  std::size_t total = 0;
  for (std::uint32_t c = 0; c < 3; ++c) total += w.cluster_members(c).size();
  EXPECT_EQ(total, 10u);
  EXPECT_EQ(w.min_cluster_size(), 3u);  // 10 = 4+3+3
}

TEST(Generators, DeterministicInSeed) {
  const World a = planted_clusters(30, 30, 3, 6, Rng(99));
  const World b = planted_clusters(30, 30, 3, 6, Rng(99));
  for (PlayerId p = 0; p < 30; ++p) EXPECT_EQ(a.matrix.row(p), b.matrix.row(p));
}

TEST(Generators, SeedsChangeWorld) {
  const World a = planted_clusters(30, 30, 3, 6, Rng(1));
  const World b = planted_clusters(30, 30, 3, 6, Rng(2));
  bool any_diff = false;
  for (PlayerId p = 0; p < 30; ++p)
    if (a.matrix.row(p) != b.matrix.row(p)) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(PreferenceMatrix, DiameterOfSpan) {
  PreferenceMatrix m(3, 8);
  m.set(1, 0, true);
  m.set(2, 0, true);
  m.set(2, 1, true);
  const std::vector<PlayerId> all{0, 1, 2};
  EXPECT_EQ(m.diameter(all), 2u);  // dist(0,2) = 2
}

class GeneratorDiameterSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(GeneratorDiameterSweep, PlantedDiameterIsUpperBound) {
  const auto [n, D] = GetParam();
  const World w = planted_clusters(n, n, 4, D, Rng(n * 31 + D));
  for (std::uint32_t c = 0; c < 4; ++c)
    EXPECT_LE(w.matrix.diameter(w.cluster_members(c)), D);
}

INSTANTIATE_TEST_SUITE_P(Sweep, GeneratorDiameterSweep,
                         ::testing::Combine(::testing::Values(32, 64, 128),
                                            ::testing::Values(0, 2, 8, 32)));

}  // namespace
}  // namespace colscore
