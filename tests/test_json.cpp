// Coverage for the minimal JSON reader behind suite files and the JSONL
// sink: happy-path structure, number spelling preservation, and the
// line:column error positions suite-file diagnostics rely on.
#include "src/common/json.hpp"

#include <gtest/gtest.h>

namespace colscore {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(json_parse("null").is_null());
  EXPECT_TRUE(json_parse("true").boolean);
  EXPECT_FALSE(json_parse("false").boolean);
  EXPECT_DOUBLE_EQ(json_parse("-2.5e2").number, -250.0);
  EXPECT_EQ(json_parse("\"hi\\n\\\"there\\\"\"").text, "hi\n\"there\"");
}

TEST(Json, NumbersKeepTheirSourceSpelling) {
  // Integer-valued config fields must round-trip into override strings
  // without a float detour.
  EXPECT_EQ(json_parse("64").text, "64");
  EXPECT_EQ(json_parse("18446744073709551615").text, "18446744073709551615");
  EXPECT_EQ(json_parse("0.25").text, "0.25");
}

TEST(Json, ParsesNestedStructure) {
  const JsonValue v = json_parse(
      R"({"name": "smoke", "grids": ["n=1,2", "n=3"], "reps": 2,
          "nested": {"deep": [true, null]}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("name")->text, "smoke");
  ASSERT_TRUE(v.find("grids")->is_array());
  EXPECT_EQ(v.find("grids")->items.size(), 2u);
  EXPECT_EQ(v.find("grids")->items[1].text, "n=3");
  EXPECT_EQ(v.find("reps")->number, 2.0);
  EXPECT_TRUE(v.find("nested")->find("deep")->items[0].boolean);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, ObjectMembersPreserveOrderAndRejectDuplicates) {
  const JsonValue v = json_parse(R"({"z": 1, "a": 2})");
  ASSERT_EQ(v.members.size(), 2u);
  EXPECT_EQ(v.members[0].first, "z");
  EXPECT_EQ(v.members[1].first, "a");
  EXPECT_THROW(json_parse(R"({"k": 1, "k": 2})"), JsonError);
}

TEST(Json, UnicodeEscapesDecodeToUtf8) {
  EXPECT_EQ(json_parse("\"\\u0041\"").text, "A");
  EXPECT_EQ(json_parse("\"\\u00e9\"").text, "\xc3\xa9");    // é
  EXPECT_EQ(json_parse("\"\\u20ac\"").text, "\xe2\x82\xac");  // €
}

TEST(Json, ErrorsCarryLineAndColumn) {
  try {
    json_parse("{\n  \"a\": 1,\n  \"b\": }\n");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  }
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_THROW(json_parse(""), JsonError);
  EXPECT_THROW(json_parse("{"), JsonError);
  EXPECT_THROW(json_parse("[1, 2,]"), JsonError);  // no trailing commas
  EXPECT_THROW(json_parse("\"unterminated"), JsonError);
  EXPECT_THROW(json_parse("{\"a\" 1}"), JsonError);
  EXPECT_THROW(json_parse("12 34"), JsonError);  // trailing content
  EXPECT_THROW(json_parse("nope"), JsonError);
}

TEST(Json, QuoteEscapesControlCharacters) {
  EXPECT_EQ(json_quote("plain"), "\"plain\"");
  EXPECT_EQ(json_quote("a\"b\\c"), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(json_quote("tab\there"), "\"tab\\there\"");
  EXPECT_EQ(json_quote(std::string(1, '\x01')), "\"\\u0001\"");
  // Round trip through the parser.
  EXPECT_EQ(json_parse(json_quote("n\newline \"x\"")).text, "n\newline \"x\"");
}

}  // namespace
}  // namespace colscore
