// Streaming maintenance correctness (PR 10).
//
// The load-bearing invariant: after ANY sequence of apply_updates batches —
// flips, arrivals, departures, rebuild-fallback epochs, interleaved — the
// graph is byte-identical to a fresh build over the current rows + alive
// set, on both backends, under any policy. Everything downstream
// (clusterings, degree orderings, churn metrics) inherits determinism from
// that. The fuzz here drives mixed batches from seeded Rng streams and
// checks the equivalence after every single epoch, not just at the end.

#include "src/protocols/stream.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "src/common/thread_pool.hpp"
#include "src/model/generators.hpp"
#include "src/sim/churn.hpp"
#include "src/sim/registry.hpp"

namespace colscore {
namespace {

constexpr std::size_t kDim = 256;
constexpr std::size_t kTau = 40;
constexpr std::size_t kMinCluster = 4;

/// Pinned by running the FixedSeedGoldenFingerprint script once at authoring
/// time; must reproduce everywhere (see that test's comment).
constexpr std::uint64_t kGoldenFingerprint = 3499066396291582376ull;

/// Same planted shape the CSR equivalence tests use: tight groups a couple
/// of flips wide, far apart from each other.
std::vector<BitVector> planted_z(std::size_t n, std::size_t groups, Rng rng) {
  std::vector<BitVector> centers;
  for (std::size_t g = 0; g < groups; ++g)
    centers.push_back(random_bitvector(kDim, rng));
  std::vector<BitVector> z;
  for (std::size_t i = 0; i < n; ++i) {
    BitVector v = centers[i % groups];
    v.flip(rng.below(kDim));
    v.flip(rng.below(kDim));
    z.push_back(std::move(v));
  }
  return z;
}

std::vector<ConstBitRow> views_of(const std::vector<BitVector>& rows) {
  return std::vector<ConstBitRow>(rows.begin(), rows.end());
}

/// Mutable churn state for the fuzz: rows + alive mask mirror what the graph
/// under test is told, so a fresh masked build over (rows, alive) is the
/// ground truth at every epoch.
struct FuzzWorld {
  std::vector<BitVector> rows;
  BitVector alive;

  explicit FuzzWorld(std::size_t n, Rng rng)
      : rows(planted_z(n, 8, rng)), alive(n, true) {}

  /// Draws one mixed epoch: departures, drift flips, re-arrivals. Mutates
  /// rows/alive in place and returns the batch apply_updates expects.
  std::vector<RowUpdate> epoch(Rng& rng) {
    std::vector<RowUpdate> batch;
    for (PlayerId p = 0; p < rows.size(); ++p) {
      const std::uint64_t roll = rng.below(100);
      if (alive.get(p)) {
        if (roll < 5) {
          alive.set(p, false);
          batch.push_back({p, UpdateKind::kDepart});
        } else if (roll < 25) {
          rows[p].flip(rng.below(kDim));
          if (roll < 15) rows[p].flip(rng.below(kDim));
          batch.push_back({p, UpdateKind::kFlip});
        }
      } else if (roll < 40) {
        alive.set(p, true);
        batch.push_back({p, UpdateKind::kArrive});
      }
    }
    return batch;
  }
};

void expect_matches_fresh(const NeighborGraph& inc, const FuzzWorld& world,
                          GraphBackend backend, const char* where) {
  const std::vector<ConstBitRow> z = views_of(world.rows);
  const NeighborGraph fresh(z, kTau, backend, ExecPolicy::serial(),
                            &world.alive);
  ASSERT_EQ(inc.size(), fresh.size()) << where;
  ASSERT_EQ(inc.backend(), fresh.backend()) << where;
  ASSERT_EQ(inc.alive_count(), fresh.alive_count()) << where;
  for (PlayerId p = 0; p < inc.size(); ++p) {
    ASSERT_EQ(inc.is_alive(p), fresh.is_alive(p)) << where << " p=" << p;
    ASSERT_EQ(inc.degree(p), fresh.degree(p)) << where << " p=" << p;
    for (PlayerId q = p + 1; q < inc.size(); ++q)
      ASSERT_EQ(inc.has_edge(p, q), fresh.has_edge(p, q))
          << where << " p=" << p << " q=" << q;
  }
  const Clustering a = cluster_players(inc, kMinCluster);
  const Clustering b = cluster_players(fresh, kMinCluster);
  EXPECT_EQ(a.cluster_of, b.cluster_of) << where;
  EXPECT_EQ(a.clusters, b.clusters) << where;
  EXPECT_EQ(a.leftovers, b.leftovers) << where;
  EXPECT_EQ(a.orphans, b.orphans) << where;
}

std::size_t total_edges(const NeighborGraph& g) {
  std::size_t sum = 0;
  for (PlayerId p = 0; p < g.size(); ++p) sum += g.degree(p);
  return sum / 2;
}

TEST(Stream, IncrementalMatchesFreshBuildUnderMixedChurn) {
  ThreadPool pool(4);
  const ExecPolicy policies[] = {ExecPolicy::serial(), ExecPolicy::pool(pool)};
  for (const GraphBackend backend : {GraphBackend::kDense, GraphBackend::kCsr})
    for (std::size_t which = 0; which < 2; ++which)
      for (const std::uint64_t seed : {11ull, 12ull, 13ull}) {
        const ExecPolicy& policy = policies[which];
        FuzzWorld world(120, Rng(seed));
        std::vector<ConstBitRow> z = views_of(world.rows);
        NeighborGraph graph(z, kTau, backend, policy);
        Rng churn_rng(seed * 1000 + 7);
        for (std::size_t e = 0; e < 12; ++e) {
          const std::vector<RowUpdate> batch = world.epoch(churn_rng);
          const std::size_t before = total_edges(graph);
          const GraphDelta delta = graph.apply_updates(batch, z, policy);
          const std::size_t after = total_edges(graph);
          // Delta accounting must reconcile with the degree cache whether or
          // not the epoch fell back to a rebuild.
          EXPECT_EQ(static_cast<long long>(after) -
                        static_cast<long long>(before),
                    static_cast<long long>(delta.edges_added) -
                        static_cast<long long>(delta.edges_removed))
              << "epoch " << e;
          expect_matches_fresh(graph, world, backend, "mixed churn");
        }
      }
}

TEST(Stream, LargeBatchFallsBackToRebuildAndStaysExact) {
  for (const GraphBackend backend :
       {GraphBackend::kDense, GraphBackend::kCsr}) {
    FuzzWorld world(96, Rng(5));
    std::vector<ConstBitRow> z = views_of(world.rows);
    NeighborGraph graph(z, kTau, backend, ExecPolicy::serial());
    // Flip a quarter of the population in one batch: >= n/8 forces the
    // documented full-rebuild fallback.
    std::vector<RowUpdate> batch;
    Rng rng(99);
    for (PlayerId p = 0; p < world.rows.size(); p += 4) {
      world.rows[p].flip(rng.below(kDim));
      world.rows[p].flip(rng.below(kDim));
      world.rows[p].flip(rng.below(kDim));
      batch.push_back({p, UpdateKind::kFlip});
    }
    const GraphDelta delta = graph.apply_updates(batch, z);
    EXPECT_TRUE(delta.rebuilt);
    expect_matches_fresh(graph, world, backend, "rebuild fallback");

    // A small follow-up batch must go back to the incremental path and stay
    // exact against the rebuilt state.
    world.rows[1].flip(rng.below(kDim));
    const RowUpdate single[] = {{1, UpdateKind::kFlip}};
    const GraphDelta d2 = graph.apply_updates(single, z);
    EXPECT_FALSE(d2.rebuilt);
    expect_matches_fresh(graph, world, backend, "post-rebuild increment");
  }
}

TEST(Stream, DepartureDropsAllEdgesAndArrivalRestoresThem) {
  for (const GraphBackend backend :
       {GraphBackend::kDense, GraphBackend::kCsr}) {
    FuzzWorld world(64, Rng(21));
    std::vector<ConstBitRow> z = views_of(world.rows);
    NeighborGraph graph(z, kTau, backend, ExecPolicy::serial());
    ASSERT_GT(graph.degree(3), 0u) << "planted input should connect player 3";
    const std::size_t degree_before = graph.degree(3);

    world.alive.set(3, false);
    const RowUpdate depart[] = {{3, UpdateKind::kDepart}};
    const GraphDelta gone = graph.apply_updates(depart, z);
    EXPECT_EQ(gone.edges_removed, degree_before);
    EXPECT_EQ(gone.edges_added, 0u);
    EXPECT_FALSE(graph.is_alive(3));
    EXPECT_EQ(graph.degree(3), 0u);
    for (PlayerId q = 0; q < graph.size(); ++q)
      EXPECT_FALSE(graph.has_edge(3, q)) << "q=" << q;
    expect_matches_fresh(graph, world, backend, "after depart");

    world.alive.set(3, true);
    const RowUpdate arrive[] = {{3, UpdateKind::kArrive}};
    const GraphDelta back = graph.apply_updates(arrive, z);
    EXPECT_EQ(back.edges_added, degree_before);
    EXPECT_EQ(graph.degree(3), degree_before);
    expect_matches_fresh(graph, world, backend, "after re-arrival");
  }
}

TEST(Stream, SessionReclustersOnlyOnDirtyEpochs) {
  FuzzWorld world(96, Rng(31));
  const std::vector<ConstBitRow> z = views_of(world.rows);
  StreamSession session(z, kTau, kMinCluster, GraphBackend::kAuto,
                        ExecPolicy::serial());
  const std::vector<std::uint32_t> initial = session.clustering().cluster_of;

  // Empty batch: nothing changed, the peel must not re-run.
  const StreamEpochStats idle = session.apply_epoch({});
  EXPECT_FALSE(idle.reclustered);
  EXPECT_EQ(session.clustering().cluster_of, initial);
  EXPECT_EQ(session.totals().reclusters, 0u);

  // Move player 0 all the way across the space: edges change, peel re-runs,
  // and the result equals a from-scratch clustering of the current graph.
  for (std::size_t b = 0; b < kDim; b += 2) world.rows[0].flip(b);
  const RowUpdate batch[] = {{0, UpdateKind::kFlip}};
  const StreamEpochStats moved = session.apply_epoch(batch);
  EXPECT_TRUE(moved.reclustered);
  EXPECT_GT(moved.edges_added + moved.edges_removed, 0u);
  const Clustering fresh =
      cluster_players(session.graph(), session.min_cluster());
  EXPECT_EQ(session.clustering().cluster_of, fresh.cluster_of);
  EXPECT_EQ(session.clustering().clusters, fresh.clusters);
  EXPECT_EQ(session.totals().epochs, 2u);
  EXPECT_EQ(session.totals().reclusters, 1u);
}

TEST(Stream, RunChurnIsDeterministicAcrossPoliciesAndRepeats) {
  ChurnConfig config;
  config.epochs = 8;
  config.flip_rate = 0.10;
  config.depart = 0.05;
  config.arrive = 0.5;
  config.threshold = kTau;
  config.min_cluster = kMinCluster;

  const auto run = [&](const ExecPolicy& policy) {
    World w = planted_clusters(96, kDim, 8, 4, Rng(77));
    Rng rng(123);
    const ChurnStats stats = run_churn(w.matrix, config, rng, policy);
    std::vector<std::uint64_t> hashes;
    for (PlayerId p = 0; p < w.matrix.n_players(); ++p)
      hashes.push_back(std::as_const(w.matrix).row(p).content_hash());
    return std::pair<ChurnStats, std::vector<std::uint64_t>>(stats, hashes);
  };

  ThreadPool pool(4);
  const auto serial = run(ExecPolicy::serial());
  const auto pooled = run(ExecPolicy::pool(pool));
  EXPECT_EQ(serial.second, pooled.second) << "drifted matrix diverged";
  EXPECT_EQ(serial.first.edges_changed, pooled.first.edges_changed);
  EXPECT_EQ(serial.first.reclusters, pooled.first.reclusters);
  EXPECT_EQ(serial.first.rebuilds, pooled.first.rebuilds);
  EXPECT_EQ(serial.first.final_alive, pooled.first.final_alive);
  EXPECT_EQ(serial.first.final_clusters, pooled.first.final_clusters);
  EXPECT_EQ(serial.first.epochs, 8u);
  EXPECT_GT(serial.first.flips, 0u);
}

TEST(Stream, ChurnWorkloadPublishesItsMetrics) {
  const Scenario sc = Scenario::resolve(ScenarioSpec::parse(
      "workload=churn n=64 budget=4 diameter=8 seed=9 opt=0 epochs=6 "
      "flip_rate=0.05 depart=0.1 arrive=0.5"));
  const ExperimentOutcome out = run_scenario(sc);

  const auto find = [&](const char* key) -> const MetricValue* {
    for (const auto& [k, v] : out.entry_metrics)
      if (k == key) return &v;
    return nullptr;
  };
  const MetricValue* epochs = find("epochs");
  ASSERT_NE(epochs, nullptr);
  EXPECT_EQ(epochs->as_u64(), 6u);
  ASSERT_NE(find("edges_changed"), nullptr);
  const MetricValue* rebuild_fraction = find("rebuild_fraction");
  ASSERT_NE(rebuild_fraction, nullptr);
  EXPECT_GE(rebuild_fraction->as_f64(), 0.0);
  EXPECT_LE(rebuild_fraction->as_f64(), 1.0);
  const MetricValue* recluster_fraction = find("recluster_fraction");
  ASSERT_NE(recluster_fraction, nullptr);
  EXPECT_LE(recluster_fraction->as_f64(), 1.0);
  ASSERT_NE(find("stream_arrivals"), nullptr);
  ASSERT_NE(find("stream_departures"), nullptr);

  // Same scenario, same seed: the whole drift trajectory must replay.
  const ExperimentOutcome again = run_scenario(sc);
  ASSERT_EQ(out.entry_metrics.size(), again.entry_metrics.size());
  for (std::size_t i = 0; i < out.entry_metrics.size(); ++i) {
    EXPECT_EQ(out.entry_metrics[i].first, again.entry_metrics[i].first);
    EXPECT_EQ(out.entry_metrics[i].second.as_number(),
              again.entry_metrics[i].second.as_number())
        << out.entry_metrics[i].first;
  }
  EXPECT_EQ(out.error.max_error, again.error.max_error);
}

/// Fixed-seed golden: the exact final state of one pinned churn script. Any
/// behavioural drift in the update path, the draw order, or the peel shows
/// up here as a diff, on every machine (nothing below depends on schedule,
/// SIMD tier, or backend — dense and csr must agree bit for bit).
TEST(Stream, FixedSeedGoldenFingerprint) {
  const auto fingerprint = [](GraphBackend backend) {
    FuzzWorld world(80, Rng(4242));
    std::vector<ConstBitRow> z = views_of(world.rows);
    NeighborGraph graph(z, kTau, backend, ExecPolicy::serial());
    Rng rng(31337);
    for (std::size_t e = 0; e < 10; ++e)
      graph.apply_updates(world.epoch(rng), z);
    std::uint64_t h = 1469598103934665603ull;  // FNV-1a over the end state
    const auto mix = [&h](std::uint64_t v) {
      h = (h ^ v) * 1099511628211ull;
    };
    for (PlayerId p = 0; p < graph.size(); ++p) {
      mix(graph.degree(p));
      mix(graph.is_alive(p) ? 1 : 0);
    }
    const Clustering c = cluster_players(graph, kMinCluster);
    for (const std::uint32_t id : c.cluster_of) mix(id);
    mix(total_edges(graph));
    mix(graph.alive_count());
    return h;
  };
  const std::uint64_t dense = fingerprint(GraphBackend::kDense);
  const std::uint64_t csr = fingerprint(GraphBackend::kCsr);
  EXPECT_EQ(dense, csr);
  EXPECT_EQ(dense, kGoldenFingerprint);
}

}  // namespace
}  // namespace colscore
