#include "src/protocols/small_radius.hpp"

#include <gtest/gtest.h>

#include "tests/test_util.hpp"

namespace colscore {
namespace {

using testutil::Harness;

std::size_t max_honest_error(const Harness& h, std::span<const PlayerId> players,
                             const std::vector<BitVector>& outputs,
                             std::span<const ObjectId> objects) {
  std::size_t worst = 0;
  for (std::size_t i = 0; i < players.size(); ++i) {
    if (!h.population.is_honest(players[i])) continue;
    const BitVector truth = h.world.matrix.row(players[i]).gather(objects);
    worst = std::max(worst, truth.hamming(outputs[i]));
  }
  return worst;
}

TEST(SmallRadius, ExactOnIdenticalClusters) {
  Harness h(identical_clusters(128, 128, 4, Rng(1)));
  SmallRadiusParams params;
  params.budget = 4;
  params.diameter = 4;
  const auto players = h.all_players();
  const auto objects = h.all_objects();
  const SmallRadiusResult r = small_radius(players, objects, params, h.env, 1);
  EXPECT_EQ(max_honest_error(h, players, r.outputs, objects), 0u);
}

TEST(SmallRadius, ErrorBoundedByDiameterMultiple) {
  // Theorem 5: output within 5D of the truth.
  const std::size_t D = 12;
  Harness h(planted_clusters(128, 128, 4, D, Rng(2)));
  SmallRadiusParams params;
  params.budget = 4;
  params.diameter = D;
  const auto players = h.all_players();
  const auto objects = h.all_objects();
  const SmallRadiusResult r = small_radius(players, objects, params, h.env, 2);
  EXPECT_LE(max_honest_error(h, players, r.outputs, objects), 5 * D);
}

TEST(SmallRadius, WorksOnObjectSubset) {
  Harness h(planted_clusters(96, 256, 3, 8, Rng(3)));
  SmallRadiusParams params;
  params.budget = 3;
  params.diameter = 8;
  const auto players = h.all_players();
  std::vector<ObjectId> subset;
  for (ObjectId o = 0; o < 256; o += 4) subset.push_back(o);
  const SmallRadiusResult r = small_radius(players, subset, params, h.env, 3);
  ASSERT_EQ(r.outputs.size(), players.size());
  ASSERT_EQ(r.outputs[0].size(), subset.size());
  EXPECT_LE(max_honest_error(h, players, r.outputs, subset), 5 * 8u);
}

TEST(SmallRadius, SubsetCountTracksDiameter) {
  Harness h(planted_clusters(64, 128, 2, 4, Rng(4)));
  SmallRadiusParams params;
  params.budget = 2;
  params.diameter = 16;
  params.subset_scale = 2.0;
  params.subset_exponent = 1.0;
  const auto players = h.all_players();
  const SmallRadiusResult r =
      small_radius(players, h.all_objects(), params, h.env, 4);
  EXPECT_EQ(r.stats.subsets, 32u);  // 2 * 16^1
}

TEST(SmallRadius, PaperExponentProducesMoreSubsets) {
  Harness h(planted_clusters(64, 128, 2, 4, Rng(5)));
  SmallRadiusParams params;
  params.budget = 2;
  params.diameter = 16;
  params.subset_scale = 1.0;
  params.subset_exponent = 1.5;
  const SmallRadiusResult r =
      small_radius(h.all_players(), h.all_objects(), params, h.env, 5);
  EXPECT_EQ(r.stats.subsets, 64u);  // 16^1.5
}

TEST(SmallRadius, ToleratesRandomLiars) {
  const std::size_t D = 8;
  Harness h(planted_clusters(128, 128, 4, D, Rng(6)));
  Rng rng(7);
  h.population.corrupt_random(10, rng, [] { return std::make_unique<RandomLiar>(); });
  SmallRadiusParams params;
  params.budget = 4;
  params.diameter = D;
  const auto players = h.all_players();
  const auto objects = h.all_objects();
  const SmallRadiusResult r = small_radius(players, objects, params, h.env, 6);
  EXPECT_LE(max_honest_error(h, players, r.outputs, objects), 5 * D);
}

TEST(SmallRadius, EmptyObjectsHandled) {
  Harness h(identical_clusters(16, 16, 2, Rng(8)));
  SmallRadiusParams params;
  const std::vector<ObjectId> none;
  const SmallRadiusResult r =
      small_radius(h.all_players(), none, params, h.env, 7);
  ASSERT_EQ(r.outputs.size(), 16u);
  for (const auto& v : r.outputs) EXPECT_TRUE(v.empty());
}

TEST(SmallRadius, DeterministicForSameKeys) {
  SmallRadiusParams params;
  params.budget = 4;
  params.diameter = 8;
  Harness h1(planted_clusters(64, 64, 4, 8, Rng(9)));
  Harness h2(planted_clusters(64, 64, 4, 8, Rng(9)));
  const auto players = h1.all_players();
  const auto objects = h1.all_objects();
  const auto r1 = small_radius(players, objects, params, h1.env, 10);
  const auto r2 = small_radius(players, objects, params, h2.env, 10);
  for (std::size_t i = 0; i < players.size(); ++i)
    EXPECT_EQ(r1.outputs[i], r2.outputs[i]);
}

TEST(SmallRadius, MoreRepeatsNeverHurtMuch) {
  const std::size_t D = 8;
  Harness h1(planted_clusters(96, 96, 3, D, Rng(11)));
  Harness h2(planted_clusters(96, 96, 3, D, Rng(11)));
  SmallRadiusParams one;
  one.budget = 3;
  one.diameter = D;
  one.repeats = 1;
  SmallRadiusParams three = one;
  three.repeats = 3;
  const auto players = h1.all_players();
  const auto objects = h1.all_objects();
  const auto r1 = small_radius(players, objects, one, h1.env, 12);
  const auto r3 = small_radius(players, objects, three, h2.env, 12);
  const std::size_t e1 = max_honest_error(h1, players, r1.outputs, objects);
  const std::size_t e3 = max_honest_error(h2, players, r3.outputs, objects);
  EXPECT_LE(e3, e1 + 2 * D);  // repeats give Select more shots, not fewer
}

class SmallRadiusDiameterSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SmallRadiusDiameterSweep, FiveDBoundAcrossDiameters) {
  const std::size_t D = GetParam();
  Harness h(planted_clusters(128, 128, 4, D, Rng(100 + D)));
  SmallRadiusParams params;
  params.budget = 4;
  params.diameter = std::max<std::size_t>(D, 1);
  const auto players = h.all_players();
  const auto objects = h.all_objects();
  const SmallRadiusResult r = small_radius(players, objects, params, h.env, 13);
  EXPECT_LE(max_honest_error(h, players, r.outputs, objects),
            std::max<std::size_t>(5 * D, 5));
}

INSTANTIATE_TEST_SUITE_P(Diameters, SmallRadiusDiameterSweep,
                         ::testing::Values(0, 2, 4, 8, 16));

}  // namespace
}  // namespace colscore
