#include "src/common/bitmatrix.hpp"

#include <gtest/gtest.h>

#include "src/common/rng.hpp"

namespace colscore {
namespace {

TEST(BitMatrix, GetSetRoundTrip) {
  BitMatrix m(3, 130);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 130u);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 130; ++c) EXPECT_FALSE(m.get(r, c));
  m.set(1, 0, true);
  m.set(1, 64, true);
  m.set(2, 129, true);
  EXPECT_TRUE(m.get(1, 0));
  EXPECT_TRUE(m.get(1, 64));
  EXPECT_TRUE(m.get(2, 129));
  EXPECT_FALSE(m.get(0, 0));
  EXPECT_FALSE(m.get(1, 1));
  m.set(1, 64, false);
  EXPECT_FALSE(m.get(1, 64));
}

TEST(BitMatrix, RowsAreWordDisjoint) {
  // Layout invariant: the stride is a whole number of cache lines, so writes
  // to one row can never touch another row's words (parallel-write safety).
  BitMatrix m(4, 65);
  EXPECT_EQ(m.word_stride() % 8, 0u);
  m.row(1).fill(true);
  EXPECT_EQ(m.row(0).popcount(), 0u);
  EXPECT_EQ(m.row(1).popcount(), 65u);
  EXPECT_EQ(m.row(2).popcount(), 0u);
}

TEST(BitMatrix, RowViewsAliasTheMatrix) {
  BitMatrix m(2, 100);
  BitRow row = m.row(0);
  row.set(7, true);
  EXPECT_TRUE(m.get(0, 7));  // write through the view is visible
  m.set(0, 8, true);
  EXPECT_TRUE(row.get(8));  // and vice versa
  ConstBitRow cview = m.row(0);
  EXPECT_EQ(cview.popcount(), 2u);
}

TEST(BitMatrix, RowAssignmentCopiesBits) {
  Rng rng(5);
  const BitVector v = random_bitvector(200, rng);
  BitMatrix m(3, 200);
  m.row(2) = v;
  EXPECT_TRUE(m.row(2) == v);
  EXPECT_EQ(m.row(2).popcount(), v.popcount());
  // Proxy semantics: assigning a row to a row copies content.
  m.row(0) = m.row(2);
  EXPECT_TRUE(m.row(0) == v);
  m.set(0, 0, !v.get(0));
  EXPECT_TRUE(m.row(2) == v);  // source unaffected
}

TEST(BitMatrix, HammingMatchesBitVectorReference) {
  Rng rng(17);
  const std::size_t dim = 300;
  std::vector<BitVector> ref;
  BitMatrix m(8, dim);
  for (std::size_t r = 0; r < 8; ++r) {
    ref.push_back(random_bitvector(dim, rng));
    m.row(r) = ref.back();
  }
  for (std::size_t a = 0; a < 8; ++a) {
    for (std::size_t b = 0; b < 8; ++b) {
      const std::size_t expect = ref[a].hamming(ref[b]);
      EXPECT_EQ(m.row(a).hamming(m.row(b)), expect);
      EXPECT_EQ(m.row(a).hamming(ref[b]), expect);  // mixed view/vector
      // hamming_exceeds agrees with the exact distance on both sides of the
      // threshold.
      if (expect > 0) EXPECT_TRUE(m.row(a).hamming_exceeds(m.row(b), expect - 1));
      EXPECT_FALSE(m.row(a).hamming_exceeds(m.row(b), expect));
    }
  }
}

TEST(BitMatrix, DiffPositionsIntoMatchesReference) {
  Rng rng(23);
  const BitVector a = random_bitvector(500, rng);
  const BitVector b = random_bitvector(500, rng);
  BitMatrix m(2, 500);
  m.row(0) = a;
  m.row(1) = b;
  std::vector<std::size_t> out;
  out.push_back(999);  // _into appends; callers own the clear
  m.row(0).diff_positions_into(m.row(1), out);
  const auto expect = a.diff_positions(b);
  ASSERT_EQ(out.size(), expect.size() + 1);
  for (std::size_t i = 0; i < expect.size(); ++i) EXPECT_EQ(out[i + 1], expect[i]);
}

TEST(BitMatrix, ContentHashMatchesEqualBitVector) {
  // The deterministic Select tournament keys probe streams off content_hash;
  // a row and an equal BitVector must hash identically.
  Rng rng(31);
  const BitVector v = random_bitvector(130, rng);
  BitMatrix m(1, 130);
  m.row(0) = v;
  EXPECT_EQ(m.row(0).content_hash(), v.content_hash());
  EXPECT_EQ(m.row(0).to_bitvector().content_hash(), v.content_hash());
}

TEST(BitMatrix, CopyAndMoveAreDeep) {
  Rng rng(41);
  BitMatrix m(4, 90);
  for (std::size_t r = 0; r < 4; ++r) m.row(r) = random_bitvector(90, rng);
  BitMatrix copy = m;
  EXPECT_TRUE(copy == m);
  copy.set(0, 0, !copy.get(0, 0));
  EXPECT_FALSE(copy == m);

  BitMatrix moved = std::move(copy);
  EXPECT_EQ(moved.rows(), 4u);
  EXPECT_FALSE(moved == m);
}

TEST(BitMatrix, FillAndAllOnesKeepPaddingClean) {
  BitMatrix m(2, 70);  // 6 bits of padding in the last used word
  m.fill(true);
  EXPECT_EQ(m.row(0).popcount(), 70u);
  BitMatrix ones(2, 70, true);
  EXPECT_TRUE(m == ones);
  // Padding must stay zero so hashes/comparisons match BitVectors.
  EXPECT_EQ(m.row(0).content_hash(), BitVector(70, true).content_hash());
  m.fill(false);
  EXPECT_EQ(m.row(0).popcount(), 0u);
}

TEST(BitMatrix, ViewsOverBitVectorsInteroperate) {
  Rng rng(51);
  BitVector v = random_bitvector(128, rng);
  ConstBitRow view = v;  // zero-copy view of a plain BitVector
  EXPECT_EQ(view.popcount(), v.popcount());
  EXPECT_EQ(view.hamming(v), 0u);
  BitVector owned = view;  // and back to an owning vector
  EXPECT_TRUE(owned == v);
  BitRow mview = v;
  mview.flip(3);
  EXPECT_EQ(v.get(3), mview.get(3));  // mutable view writes through
}

TEST(BitMatrix, EmptyMatrix) {
  BitMatrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
  BitMatrix zero_cols(3, 0);
  EXPECT_EQ(zero_cols.rows(), 3u);
  EXPECT_EQ(zero_cols.row(0).size(), 0u);
  EXPECT_EQ(zero_cols.row(0).popcount(), 0u);
}

}  // namespace
}  // namespace colscore
