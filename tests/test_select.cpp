#include "src/protocols/select.hpp"

#include <gtest/gtest.h>

#include "tests/test_util.hpp"

namespace colscore {
namespace {

using testutil::Harness;

/// Candidates at controlled distances from player 0's truth.
struct SelectFixture {
  Harness h;
  std::vector<ObjectId> objects;
  std::vector<BitVector> candidates;

  explicit SelectFixture(std::size_t n_objects = 512, std::uint64_t seed = 1)
      : h(uniform_random(4, n_objects, Rng(seed))) {
    objects = h.all_objects();
  }

  /// Adds a candidate at exactly `distance` from player 0's truth.
  void add_candidate(std::size_t distance, std::uint64_t seed) {
    BitVector c = h.world.matrix.row(0);
    Rng rng(seed);
    c.flip_random(rng, distance);
    candidates.push_back(std::move(c));
  }

  std::size_t dist(std::size_t idx) const {
    return h.world.matrix.row(0).hamming(candidates[idx]);
  }
};

TEST(RSelect, SingleCandidateCostsNothing) {
  SelectFixture f;
  f.add_candidate(100, 1);
  const SelectOutcome out = rselect(0, f.candidates, f.objects, f.h.env, 1, 16);
  EXPECT_EQ(out.chosen, 0u);
  EXPECT_EQ(out.probes, 0u);
}

TEST(RSelect, PicksExactMatchOverFarCandidate) {
  SelectFixture f;
  f.add_candidate(0, 1);    // the truth itself
  f.add_candidate(200, 2);  // far away
  const SelectOutcome out = rselect(0, f.candidates, f.objects, f.h.env, 2, 16);
  EXPECT_EQ(out.chosen, 0u);
}

TEST(RSelect, OrderDoesNotMatterForClearWinner) {
  SelectFixture f;
  f.add_candidate(250, 1);
  f.add_candidate(0, 2);
  const SelectOutcome out = rselect(0, f.candidates, f.objects, f.h.env, 3, 16);
  EXPECT_EQ(out.chosen, 1u);
}

TEST(RSelect, OutputWithinConstantFactorOfBest) {
  // Theorem 3: |v(p) - w| = O(|v(p) - w*|). Repeat over seeds; the chosen
  // candidate must never be dramatically worse than the best.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SelectFixture f(512, seed);
    f.add_candidate(10, seed * 17 + 1);
    f.add_candidate(40, seed * 17 + 2);
    f.add_candidate(160, seed * 17 + 3);
    f.add_candidate(320, seed * 17 + 4);
    const SelectOutcome out = rselect(0, f.candidates, f.objects, f.h.env, seed, 24);
    EXPECT_LE(f.dist(out.chosen), 4 * 10u) << "seed=" << seed;
  }
}

TEST(RSelect, ProbeComplexityQuadraticInK) {
  // Theorem 3: O(k^2 log n) probes. Distinct random candidates at ~n/2 from
  // each other force every pair to be probed.
  SelectFixture f(1024, 3);
  for (std::uint64_t i = 0; i < 8; ++i) f.add_candidate(300 + 10 * i, 100 + i);
  const std::size_t per_pair = 16;
  const SelectOutcome out = rselect(0, f.candidates, f.objects, f.h.env, 4, per_pair);
  const std::size_t pairs = 8 * 7 / 2;
  EXPECT_LE(out.pairs_probed, pairs);
  EXPECT_GT(out.pairs_probed, 0u);
  // Probe cache bounds total below pairs * per_pair.
  EXPECT_LE(out.probes, pairs * per_pair);
}

TEST(RSelect, ChargesProbesToPlayer) {
  SelectFixture f;
  f.add_candidate(100, 1);
  f.add_candidate(400, 2);
  const auto before = f.h.oracle.probes_by(0);
  const SelectOutcome out = rselect(0, f.candidates, f.objects, f.h.env, 5, 8);
  EXPECT_EQ(f.h.oracle.probes_by(0) - before, out.probes);
  EXPECT_GT(out.probes, 0u);
}

TEST(RSelect, IdenticalCandidatesSkipped) {
  SelectFixture f;
  f.add_candidate(50, 1);
  f.candidates.push_back(f.candidates[0]);  // exact duplicate
  const SelectOutcome out = rselect(0, f.candidates, f.objects, f.h.env, 6, 16);
  EXPECT_EQ(out.probes, 0u);  // no differing positions to probe
}

TEST(SelectDeterministic, SameKeySameOutcome) {
  SelectFixture f;
  f.add_candidate(30, 1);
  f.add_candidate(200, 2);
  f.add_candidate(90, 3);
  const SelectOutcome a =
      select_deterministic(0, f.candidates, f.objects, f.h.env, 7, 16, 0);
  const SelectOutcome b =
      select_deterministic(0, f.candidates, f.objects, f.h.env, 7, 16, 0);
  EXPECT_EQ(a.chosen, b.chosen);
  EXPECT_EQ(a.pairs_probed, b.pairs_probed);
}

TEST(SelectDeterministic, SkipBelowAvoidsProbingClosePairs) {
  SelectFixture f;
  f.add_candidate(5, 1);
  // Second candidate differs from the first in <= 10 positions.
  BitVector near = f.candidates[0];
  Rng rng(55);
  near.flip_random(rng, 8);
  f.candidates.push_back(std::move(near));
  const SelectOutcome out =
      select_deterministic(0, f.candidates, f.objects, f.h.env, 8, 16,
                           /*skip_below=*/16);
  EXPECT_EQ(out.probes, 0u);  // the only pair is under the threshold
  EXPECT_LE(f.dist(out.chosen), 5u + 8u);
}

TEST(SelectDeterministic, ContractHoldsWithDCloseCandidate) {
  // The Select contract (§5.3): if some candidate is within D of v(p), the
  // output is within O(D).
  const std::size_t D = 20;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SelectFixture f(512, seed);
    f.add_candidate(D, seed + 10);
    f.add_candidate(150, seed + 20);
    f.add_candidate(250, seed + 30);
    const SelectOutcome out =
        select_deterministic(0, f.candidates, f.objects, f.h.env, seed, 24, D);
    EXPECT_LE(f.dist(out.chosen), 5 * D) << "seed=" << seed;
  }
}

TEST(SelectPrefiltered, FallsThroughForSmallSets) {
  SelectFixture f;
  f.add_candidate(10, 1);
  f.add_candidate(200, 2);
  const SelectOutcome out = select_prefiltered(0, f.candidates, f.objects, f.h.env, 9,
                                               16, 16, /*max_finalists=*/8, 0);
  EXPECT_EQ(f.dist(out.chosen), 10u);
}

TEST(SelectPrefiltered, SurvivesLargeCandidateSets) {
  SelectFixture f(1024, 5);
  f.add_candidate(15, 1);  // the good one
  for (std::uint64_t i = 0; i < 30; ++i) f.add_candidate(300 + i, 50 + i);
  const SelectOutcome out = select_prefiltered(0, f.candidates, f.objects, f.h.env, 10,
                                               16, /*prefilter=*/48,
                                               /*max_finalists=*/6, 0);
  EXPECT_LE(f.dist(out.chosen), 60u);
  // Probe cost must be far below the full k^2 tournament.
  const std::size_t full_pairs = 31 * 30 / 2;
  EXPECT_LT(out.probes, full_pairs * 16 / 4);
}

TEST(SelectPrefiltered, MapsIndicesBackCorrectly) {
  SelectFixture f(512, 6);
  for (std::uint64_t i = 0; i < 20; ++i) f.add_candidate(200 + 5 * i, 90 + i);
  f.add_candidate(0, 999);  // truth is the last candidate (index 20)
  const SelectOutcome out = select_prefiltered(0, f.candidates, f.objects, f.h.env, 11,
                                               16, 64, 4, 0);
  EXPECT_EQ(out.chosen, 20u);
}

TEST(SelectOutcome, DishonestPlayerProbesAreFree) {
  SelectFixture f;
  f.h.population.set_behavior(0, std::make_unique<Inverter>());
  f.add_candidate(100, 1);
  f.add_candidate(300, 2);
  rselect(0, f.candidates, f.objects, f.h.env, 12, 8);
  EXPECT_EQ(f.h.oracle.probes_by(0), 0u);  // peeked, not probed
}

}  // namespace
}  // namespace colscore
