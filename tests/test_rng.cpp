#include "src/common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace colscore {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(8);
  std::vector<int> counts(10, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[rng.below(10)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), trials / 10.0, trials / 10.0 * 0.12);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
  EXPECT_EQ(rng.range(5, 5), 5);
  EXPECT_EQ(rng.range(5, 4), 5);  // degenerate clamps to lo
}

TEST(Rng, ChanceExtremes) {
  Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-1.0));
    EXPECT_TRUE(rng.chance(2.0));
  }
}

TEST(Rng, ChanceFrequency) {
  Rng rng(11);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i)
    if (rng.chance(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(12);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ForkIsCallOrderIndependent) {
  // fork(key) must depend only on the original seed and the key, not on how
  // many values were drawn — this is what makes parallel streams stable.
  Rng a(555);
  Rng fork_before = a.fork(42);
  for (int i = 0; i < 10; ++i) (void)a();
  Rng fork_after = a.fork(42);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(fork_before(), fork_after());
}

TEST(Rng, ForkedStreamsIndependent) {
  Rng root(77);
  Rng a = root.fork(1);
  Rng b = root.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, TwoKeyForkDiffersFromOneKey) {
  Rng root(78);
  Rng a = root.fork(1);
  Rng b = root.fork(1, 2);
  EXPECT_NE(a(), b());
}

TEST(SplitMix, KnownSequenceAdvances) {
  std::uint64_t s1 = 0;
  std::uint64_t s2 = 0;
  const auto a = splitmix64(s1);
  const auto b = splitmix64(s2);
  EXPECT_EQ(a, b);  // same state, same output
  const auto c = splitmix64(s1);
  EXPECT_NE(a, c);  // state advanced
}

TEST(MixKeys, SensitiveToEveryKey) {
  const auto base = mix_keys(1, 2, 3);
  EXPECT_NE(base, mix_keys(2, 2, 3));
  EXPECT_NE(base, mix_keys(1, 3, 3));
  EXPECT_NE(base, mix_keys(1, 2, 4));
  EXPECT_EQ(base, mix_keys(1, 2, 3));
}

TEST(Rng, NoShortCycles) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) seen.insert(rng());
  EXPECT_EQ(seen.size(), 10000u);
}

}  // namespace
}  // namespace colscore
