#include "src/core/calculate_preferences.hpp"

#include <gtest/gtest.h>

#include "src/metrics/error.hpp"
#include "tests/test_util.hpp"

namespace colscore {
namespace {

using testutil::Harness;

std::size_t max_honest_error(const Harness& h, const ProtocolResult& r) {
  const auto honest = h.population.honest_players();
  const auto errors = hamming_errors(h.world.matrix, r.outputs, honest);
  return errors.empty() ? 0 : *std::max_element(errors.begin(), errors.end());
}

TEST(CalculatePreferences, EasyCaseProbesEverything) {
  // B >= n / log2 n triggers the §6.1 shortcut.
  Harness h(planted_clusters(32, 32, 2, 4, Rng(1)));
  Params params = Params::practical(/*budget=*/32);
  const ProtocolResult r = calculate_preferences(h.env, params, 1);
  EXPECT_TRUE(r.easy_case);
  EXPECT_EQ(max_honest_error(h, r), 0u);
  EXPECT_EQ(r.max_probes, 32u);
}

TEST(CalculatePreferences, HonestPlantedClustersRecovered) {
  const std::size_t D = 16;
  Harness h(planted_clusters(256, 256, 8, D, Rng(2)));
  Params params = Params::practical(8);
  const ProtocolResult r = calculate_preferences(h.env, params, 2);
  EXPECT_FALSE(r.easy_case);
  EXPECT_LE(max_honest_error(h, r), 2 * D);
  EXPECT_FALSE(r.iterations.empty());
}

TEST(CalculatePreferences, IdenticalClustersNearExact) {
  Harness h(identical_clusters(256, 256, 8, Rng(3)));
  Params params = Params::practical(8);
  const ProtocolResult r = calculate_preferences(h.env, params, 3);
  EXPECT_LE(max_honest_error(h, r), 4u);
}

TEST(CalculatePreferences, ClustersFormOnGoodIteration) {
  Harness h(planted_clusters(256, 256, 8, 8, Rng(4)));
  Params params = Params::practical(8);
  const ProtocolResult r = calculate_preferences(h.env, params, 4);
  bool some_iteration_found_structure = false;
  for (const auto& it : r.iterations)
    if (it.clusters >= 6 && it.min_cluster >= 256 / 8 * 2 / 3)
      some_iteration_found_structure = true;
  EXPECT_TRUE(some_iteration_found_structure);
}

TEST(CalculatePreferences, ProbeAccountingConsistent) {
  Harness h(planted_clusters(128, 128, 4, 8, Rng(5)));
  Params params = Params::practical(4);
  const ProtocolResult r = calculate_preferences(h.env, params, 5);
  std::uint64_t total = 0, peak = 0;
  for (const auto c : r.probes_by_player) {
    total += c;
    peak = std::max(peak, c);
  }
  EXPECT_EQ(total, r.total_probes);
  EXPECT_EQ(peak, r.max_probes);
  EXPECT_EQ(r.total_probes, h.env.oracle.total_probes());
}

TEST(CalculatePreferences, OutputsHaveRightShape) {
  Harness h(planted_clusters(64, 64, 2, 4, Rng(6)));
  Params params = Params::practical(2);
  const ProtocolResult r = calculate_preferences(h.env, params, 6);
  ASSERT_EQ(r.outputs.size(), 64u);
  for (const auto& v : r.outputs) EXPECT_EQ(v.size(), 64u);
}

TEST(CalculatePreferences, ToleratesRandomLiarsAtBound) {
  const std::size_t n = 256, B = 8, D = 8;
  Harness h(planted_clusters(n, n, B, D, Rng(7)));
  Rng rng(8);
  h.population.corrupt_random(n / (3 * B), rng,
                              [] { return std::make_unique<RandomLiar>(); });
  Params params = Params::practical(B);
  const ProtocolResult r = calculate_preferences(h.env, params, 7);
  EXPECT_LE(max_honest_error(h, r), 3 * D);
}

TEST(CalculatePreferences, ToleratesSleepersAtBound) {
  const std::size_t n = 256, B = 8, D = 8;
  Harness h(planted_clusters(n, n, B, D, Rng(9)));
  Rng rng(10);
  h.population.corrupt_random(n / (3 * B), rng,
                              [] { return std::make_unique<Sleeper>(); });
  Params params = Params::practical(B);
  const ProtocolResult r = calculate_preferences(h.env, params, 8);
  EXPECT_LE(max_honest_error(h, r), 4 * D);
}

TEST(CalculatePreferences, HijackersCannotDestroyVictim) {
  // The §7.2 hijack: mimics join the victim's cluster then betray. With
  // <= n/(3B) of them the victim's predictions stay O(D).
  const std::size_t n = 256, B = 8, D = 8;
  Harness h(planted_clusters(n, n, B, D, Rng(11)));
  Rng rng(12);
  const World& w = h.world;
  h.population.corrupt_random(
      n / (3 * B), rng,
      [&w] { return std::make_unique<ClusterHijacker>(w.matrix, 0); },
      /*protected_player=*/0);
  Params params = Params::practical(B);
  const ProtocolResult r = calculate_preferences(h.env, params, 9);
  const std::size_t victim_error = w.matrix.row(0).hamming(r.outputs[0]);
  EXPECT_LE(victim_error, 4 * D);
}

TEST(CalculatePreferences, DeterministicForSameSeeds) {
  Params params = Params::practical(4);
  Harness h1(planted_clusters(128, 128, 4, 8, Rng(13)));
  Harness h2(planted_clusters(128, 128, 4, 8, Rng(13)));
  const ProtocolResult a = calculate_preferences(h1.env, params, 10);
  const ProtocolResult b = calculate_preferences(h2.env, params, 10);
  for (PlayerId p = 0; p < 128; ++p) EXPECT_EQ(a.outputs[p], b.outputs[p]);
  EXPECT_EQ(a.total_probes, b.total_probes);
}

TEST(CalculatePreferences, UniformRandomDegradesGracefully) {
  // No structure -> collaboration can't help much, but the protocol must
  // not crash and must emit outputs.
  Harness h(uniform_random(128, 128, Rng(14)));
  Params params = Params::practical(4);
  const ProtocolResult r = calculate_preferences(h.env, params, 11);
  EXPECT_EQ(r.outputs.size(), 128u);
}

TEST(CalculatePreferences, PaperPresetRuns) {
  Harness h(planted_clusters(64, 64, 4, 4, Rng(15)));
  Params params = Params::paper(4);
  const ProtocolResult r = calculate_preferences(h.env, params, 12);
  EXPECT_EQ(r.outputs.size(), 64u);
}

class CalcPrefDiameterSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CalcPrefDiameterSweep, ErrorScalesWithPlantedDiameter) {
  const std::size_t D = GetParam();
  Harness h(planted_clusters(256, 256, 8, D, Rng(50 + D)));
  Params params = Params::practical(8);
  const ProtocolResult r = calculate_preferences(h.env, params, 13);
  EXPECT_LE(max_honest_error(h, r), std::max<std::size_t>(3 * D, 6));
}

INSTANTIATE_TEST_SUITE_P(Diameters, CalcPrefDiameterSweep,
                         ::testing::Values(0, 4, 16, 32));

}  // namespace
}  // namespace colscore
