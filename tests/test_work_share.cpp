#include "src/protocols/work_share.hpp"

#include <gtest/gtest.h>

#include "tests/test_util.hpp"

namespace colscore {
namespace {

using testutil::Harness;

TEST(WorkShare, IdenticalClusterVotesPerfectly) {
  Harness h(identical_clusters(32, 64, 1, Rng(1)));
  WorkShareParams params;
  params.votes_per_object = 9;
  const auto members = h.all_players();
  const BitVector prediction = cluster_votes(members, h.env, 1, params);
  EXPECT_EQ(prediction, h.world.matrix.row(0));
}

TEST(WorkShare, ProbeCostSharedAcrossCluster) {
  // Lemma 10: no member probes more than ~(n_objects * votes / |cluster|).
  Harness h(identical_clusters(64, 256, 1, Rng(2)));
  WorkShareParams params;
  params.votes_per_object = 8;
  cluster_votes(h.all_players(), h.env, 2, params);
  const std::uint64_t expected_mean = 256 * 8 / 64;  // 32
  EXPECT_LT(h.env.oracle.max_probes(), 4 * expected_mean);
  EXPECT_GT(h.env.oracle.total_probes(), 0u);
}

TEST(WorkShare, ReportsLandOnBoard) {
  Harness h(identical_clusters(16, 32, 1, Rng(3)));
  WorkShareParams params;
  params.votes_per_object = 5;
  WorkShareStats stats;
  cluster_votes(h.all_players(), h.env, 77, params, &stats);
  EXPECT_EQ(stats.reports, 32u * 5u);
  std::size_t on_board = 0;
  for (ObjectId o = 0; o < 32; ++o) on_board += h.board.reports_for(77, o).size();
  EXPECT_EQ(on_board, 32u * 5u);
}

TEST(WorkShare, MajorityDefeatsMinorityLiars) {
  // Lemma 13 core: < 1/3 dishonest in the cluster cannot flip objects the
  // honest members agree on.
  Harness h(identical_clusters(60, 128, 1, Rng(4)));
  Rng rng(5);
  h.population.corrupt_random(18, rng, [] { return std::make_unique<Inverter>(); });
  WorkShareParams params;
  params.votes_per_object = 15;
  const BitVector prediction = cluster_votes(h.all_players(), h.env, 3, params);
  const std::size_t errors = prediction.hamming(h.world.matrix.row(0));
  // With 30% inverters and 15 votes/object a few objects may flip, but the
  // vast majority must be correct.
  EXPECT_LE(errors, 128u / 10);
}

TEST(WorkShare, MajorityLiarsDoBreakIt) {
  // Sanity inversion: over half dishonest and the prediction collapses —
  // confirming the n/(3B) bound is load-bearing.
  Harness h(identical_clusters(60, 128, 1, Rng(6)));
  Rng rng(7);
  h.population.corrupt_random(40, rng, [] { return std::make_unique<Inverter>(); });
  WorkShareParams params;
  params.votes_per_object = 15;
  const BitVector prediction = cluster_votes(h.all_players(), h.env, 4, params);
  const std::size_t errors = prediction.hamming(h.world.matrix.row(0));
  EXPECT_GT(errors, 128u / 2);
}

TEST(WorkShare, PlantedClusterErrorTracksDiameter) {
  // Lemma 12: within a diameter-D cluster the majority vote errs on O(D)
  // objects for any member.
  const std::size_t D = 12;
  Harness h(planted_clusters(64, 256, 1, D, Rng(8)));
  WorkShareParams params;
  params.votes_per_object = 11;
  const BitVector prediction = cluster_votes(h.all_players(), h.env, 5, params);
  for (PlayerId p = 0; p < 8; ++p) {
    EXPECT_LE(prediction.hamming(h.world.matrix.row(p)), 3 * D);
  }
}

TEST(WorkShare, SingleMemberClusterProbesAlone) {
  Harness h(identical_clusters(4, 16, 4, Rng(9)));
  WorkShareParams params;
  params.votes_per_object = 3;
  const std::vector<PlayerId> solo{2};
  const BitVector prediction = cluster_votes(solo, h.env, 6, params);
  EXPECT_EQ(prediction, h.world.matrix.row(2));
  EXPECT_GE(h.env.oracle.probes_by(2), 16u);
  EXPECT_EQ(h.env.oracle.probes_by(0), 0u);
}

TEST(WorkShare, DeterministicForSameKey) {
  Harness h1(planted_clusters(32, 64, 1, 6, Rng(10)));
  Harness h2(planted_clusters(32, 64, 1, 6, Rng(10)));
  WorkShareParams params;
  params.votes_per_object = 7;
  const BitVector a = cluster_votes(h1.all_players(), h1.env, 11, params);
  const BitVector b = cluster_votes(h2.all_players(), h2.env, 11, params);
  EXPECT_EQ(a, b);
}

TEST(WorkShare, SleeperLiesOnlyInVotePhase) {
  // A sleeper behaves honestly elsewhere but lies here; with enough of them
  // the cluster degrades exactly like inverters.
  Harness h(identical_clusters(30, 64, 1, Rng(12)));
  Rng rng(13);
  h.population.corrupt_random(20, rng, [] { return std::make_unique<Sleeper>(); });
  WorkShareParams params;
  params.votes_per_object = 9;
  const BitVector prediction = cluster_votes(h.all_players(), h.env, 12, params);
  EXPECT_GT(prediction.hamming(h.world.matrix.row(0)), 64u / 4);
}

class WorkShareVoteSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WorkShareVoteSweep, MoreVotesMoreRobust) {
  const std::size_t votes = GetParam();
  Harness h(identical_clusters(60, 128, 1, Rng(20)));
  Rng rng(21);
  h.population.corrupt_random(15, rng, [] { return std::make_unique<Inverter>(); });
  WorkShareParams params;
  params.votes_per_object = votes;
  const BitVector prediction =
      cluster_votes(h.all_players(), h.env, 100 + votes, params);
  const std::size_t errors = prediction.hamming(h.world.matrix.row(0));
  // 25% liars: even 5 votes keep most objects right; 21 votes nearly all.
  EXPECT_LE(errors, votes >= 21 ? 3u : 26u);
}

INSTANTIATE_TEST_SUITE_P(Votes, WorkShareVoteSweep, ::testing::Values(5, 9, 21));

}  // namespace
}  // namespace colscore
