// Tests for the Lemma 13 optimal voting attack: colluders that spend their
// votes exclusively on "strange" objects (where the honest cluster is
// split), siding with the honest minority.
#include <gtest/gtest.h>

#include "src/core/calculate_preferences.hpp"
#include "src/metrics/error.hpp"
#include "src/sim/experiment.hpp"
#include "tests/test_util.hpp"

namespace colscore {
namespace {

using testutil::Harness;

TEST(StrangeColluder, HonestOutsideVotePhase) {
  const World w = planted_clusters(32, 64, 2, 8, Rng(1));
  StrangeObjectColluder colluder(w.matrix, 8);
  Rng rng(2);
  for (ObjectId o = 0; o < 10; ++o) {
    const bool truth = w.matrix.preference(5, o);
    EXPECT_EQ(colluder.report(5, o, truth, {Phase::kSample, 0}, rng), truth);
    EXPECT_EQ(colluder.report(5, o, truth, {Phase::kClusterGraph, 0}, rng), truth);
  }
}

TEST(StrangeColluder, TruthfulOnSettledObjects) {
  // Identical clusters have NO strange objects (the honest side is
  // unanimous everywhere), so the attack degenerates to honesty.
  const World w = identical_clusters(32, 64, 2, Rng(3));
  StrangeObjectColluder colluder(w.matrix, 0);
  Rng rng(4);
  for (ObjectId o = 0; o < 64; ++o) {
    const bool truth = w.matrix.preference(5, o);
    EXPECT_EQ(colluder.report(5, o, truth, {Phase::kVote, 0}, rng), truth);
  }
  EXPECT_EQ(colluder.strange_objects(5), 0u);
}

TEST(StrangeColluder, FindsStrangeObjectsOnPlanted) {
  // Strange objects need a genuine intra-cluster split: with diameter 48
  // over only 64 objects, members disagree on ~19% of coordinates, so a
  // constant fraction of objects have a >1:5 honest minority.
  const World w = planted_clusters(64, 64, 2, 48, Rng(5));
  StrangeObjectColluder colluder(w.matrix, 48);
  Rng rng(6);
  (void)colluder.report(3, 0, w.matrix.preference(3, 0), {Phase::kVote, 0}, rng);
  EXPECT_GT(colluder.strange_objects(3), 0u);
  // Lemma 13's counting argument: strange objects are O(D).
  EXPECT_LE(colluder.strange_objects(3), 4 * 48u);
}

TEST(StrangeColluder, VotesWithMinorityOnStrangeObjects) {
  // Hand-built split: 9 players like object 0, 3 dislike it (ratio 3 <= 5).
  PreferenceMatrix m(12, 4);
  for (PlayerId p = 0; p < 9; ++p) m.set(p, 0, true);
  World w;
  w.matrix = m;
  StrangeObjectColluder colluder(m, /*diameter=*/4);
  Rng rng(7);
  // The colluder (any member) must vote 0 (the minority side) on object 0.
  EXPECT_FALSE(colluder.report(0, 0, /*truth=*/true, {Phase::kVote, 0}, rng));
}

TEST(StrangeColluder, ProtocolHoldsAtToleranceBound) {
  // The headline check: even the optimal voting attack cannot push honest
  // error past O(D) when the colluders are at most n/(3B) (Lemma 13).
  ExperimentConfig config;
  config.n = 256;
  config.budget = 8;
  config.diameter = 12;
  config.adversary = AdversaryKind::kStrangeColluder;
  config.dishonest = config.n / (3 * config.budget);
  config.seed = 8;
  config.compute_opt = false;
  const ExperimentOutcome out = run_experiment(config);
  EXPECT_LE(out.error.max_error, 4 * 12u);
}

TEST(StrangeColluder, StrongerThanSleeperNeverWeakerThanBound) {
  // The strange-object attack targets exactly the votes that can flip;
  // compare both at the same corruption level — both must stay within the
  // Lemma 12/13 envelope, and the protocol must not collapse under either.
  for (AdversaryKind adv : {AdversaryKind::kSleeper, AdversaryKind::kStrangeColluder}) {
    ExperimentConfig config;
    config.n = 192;
    config.budget = 8;
    config.diameter = 12;
    config.adversary = adv;
    config.dishonest = config.n / (3 * config.budget);
    config.seed = 9;
    config.compute_opt = false;
    const ExperimentOutcome out = run_experiment(config);
    EXPECT_LE(out.error.max_error, 4 * 12u)
        << ExperimentConfig::adversary_name(adv);
  }
}

TEST(StrangeColluder, ParallelVotePhaseIsSafe) {
  // The plan is built lazily from object-parallel vote loops; this exercises
  // the synchronized initialization under the thread pool.
  Harness h(planted_clusters(128, 128, 4, 12, Rng(10)));
  for (PlayerId p = 10; p < 15; ++p)
    h.population.set_behavior(
        p, std::make_unique<StrangeObjectColluder>(h.world.matrix, 12));
  Params params = Params::practical(4);
  const ProtocolResult r = calculate_preferences(h.env, params, 11);
  const auto honest = h.population.honest_players();
  const auto errors = hamming_errors(h.world.matrix, r.outputs, honest);
  EXPECT_LE(*std::max_element(errors.begin(), errors.end()), 4 * 12u);
}

TEST(ExperimentOutcome, BoardTrafficAccounted) {
  ExperimentConfig config;
  config.n = 96;
  config.budget = 4;
  config.diameter = 8;
  config.seed = 12;
  config.compute_opt = false;
  const ExperimentOutcome out = run_experiment(config);
  EXPECT_GT(out.board_reports, 0u);   // vote-phase reports
  EXPECT_GT(out.board_vectors, 0u);   // ZeroRadius/SmallRadius publications
}

}  // namespace
}  // namespace colscore
