#include <gtest/gtest.h>

#include "src/ext/hetero.hpp"
#include "src/ext/scored.hpp"
#include "tests/test_util.hpp"

namespace colscore {
namespace {

using testutil::Harness;

// ---------------------------------------------------------------------------
// Heterogeneous budgets (§8).
// ---------------------------------------------------------------------------

TEST(Hetero, WeightedVotesCorrectOnIdentical) {
  Harness h(identical_clusters(32, 64, 1, Rng(1)));
  std::vector<std::size_t> budgets(32, 1);
  for (std::size_t i = 0; i < 8; ++i) budgets[i] = 10;  // 8 heavy lifters
  WorkShareParams params;
  params.votes_per_object = 9;
  const BitVector prediction = weighted_cluster_votes(
      h.all_players(), budgets, h.env, 1, params);
  EXPECT_EQ(prediction, h.world.matrix.row(0));
}

TEST(Hetero, ProbeLoadFollowsBudget) {
  Harness h(identical_clusters(40, 400, 1, Rng(2)));
  std::vector<std::size_t> budgets(40, 1);
  for (std::size_t i = 0; i < 10; ++i) budgets[i] = 9;  // 9x budget
  WorkShareParams params;
  params.votes_per_object = 10;
  weighted_cluster_votes(h.all_players(), budgets, h.env, 2, params);
  // Big players carry ~9x the probes of small players (9*10 + 30 weight
  // units -> big: 400*10*9/120 = 300 expected, small: ~33).
  std::uint64_t big = 0, small = 0;
  for (PlayerId p = 0; p < 10; ++p) big += h.env.oracle.probes_by(p);
  for (PlayerId p = 10; p < 40; ++p) small += h.env.oracle.probes_by(p);
  const double big_mean = static_cast<double>(big) / 10.0;
  const double small_mean = static_cast<double>(small) / 30.0;
  EXPECT_GT(big_mean, 5.0 * small_mean);
}

TEST(Hetero, WeightedVotesResistLiars) {
  Harness h(identical_clusters(48, 96, 1, Rng(3)));
  Rng rng(4);
  h.population.corrupt_random(12, rng, [] { return std::make_unique<Inverter>(); });
  std::vector<std::size_t> budgets(48, 1);
  WorkShareParams params;
  params.votes_per_object = 21;
  const BitVector prediction =
      weighted_cluster_votes(h.all_players(), budgets, h.env, 3, params);
  EXPECT_LE(prediction.hamming(h.world.matrix.row(0)), 5u);
}

TEST(Hetero, ClusterBudgetCheck) {
  std::vector<std::size_t> small(10, 5);  // total 50
  EXPECT_FALSE(cluster_budget_ok(small, 100, 1));
  std::vector<std::size_t> enough(10, 10);  // total 100
  EXPECT_TRUE(cluster_budget_ok(enough, 100, 1));
  EXPECT_FALSE(cluster_budget_ok(enough, 100, 2));
  std::vector<std::size_t> mixed{95, 1, 1, 1, 1, 1};  // one big player carries
  EXPECT_TRUE(cluster_budget_ok(mixed, 100, 1));
}

TEST(Hetero, DegenerateSingleMember) {
  Harness h(identical_clusters(4, 16, 4, Rng(5)));
  const std::vector<PlayerId> solo{1};
  const std::vector<std::size_t> budget{3};
  WorkShareParams params;
  params.votes_per_object = 3;
  const BitVector prediction = weighted_cluster_votes(solo, budget, h.env, 4, params);
  EXPECT_EQ(prediction, h.world.matrix.row(1));
}

// ---------------------------------------------------------------------------
// Non-binary scores (§8).
// ---------------------------------------------------------------------------

TEST(ScoreMatrix, RoundTripAndDistance) {
  ScoreMatrix m(2, 4, 5);
  m.set_score(0, 0, 4);
  m.set_score(1, 0, 1);
  m.set_score(0, 3, 2);
  EXPECT_EQ(m.score(0, 0), 4);
  EXPECT_EQ(m.l1_distance(0, 1), 3u + 2u);  // |4-1| + |2-0|
  EXPECT_EQ(m.levels(), 5);
}

TEST(ScoreMatrix, LayerDecomposition) {
  ScoreMatrix m(1, 3, 4);
  m.set_score(0, 0, 0);
  m.set_score(0, 1, 2);
  m.set_score(0, 2, 3);
  const PreferenceMatrix l1 = m.layer(1);
  const PreferenceMatrix l3 = m.layer(3);
  EXPECT_FALSE(l1.preference(0, 0));
  EXPECT_TRUE(l1.preference(0, 1));
  EXPECT_TRUE(l1.preference(0, 2));
  EXPECT_FALSE(l3.preference(0, 1));
  EXPECT_TRUE(l3.preference(0, 2));
}

TEST(ScoreMatrix, LayerSumRecoversScore) {
  Rng rng(6);
  ScoreMatrix m(4, 16, 5);
  for (PlayerId p = 0; p < 4; ++p)
    for (ObjectId o = 0; o < 16; ++o)
      m.set_score(p, o, static_cast<std::uint8_t>(rng.below(5)));
  for (PlayerId p = 0; p < 4; ++p) {
    for (ObjectId o = 0; o < 16; ++o) {
      int sum = 0;
      for (std::uint8_t t = 1; t < 5; ++t)
        if (m.layer(t).preference(p, o)) ++sum;
      EXPECT_EQ(sum, m.score(p, o));
    }
  }
}

TEST(ScoredWorld, PlantedDiameterRespected) {
  const ScoredWorld w = planted_scored_clusters(40, 64, 4, 5, 10, Rng(7));
  for (std::uint32_t c = 0; c < 4; ++c) {
    std::vector<PlayerId> members;
    for (PlayerId p = 0; p < 40; ++p)
      if (w.cluster_of[p] == c) members.push_back(p);
    for (std::size_t i = 0; i < members.size(); ++i)
      for (std::size_t j = i + 1; j < members.size(); ++j)
        EXPECT_LE(w.scores.l1_distance(members[i], members[j]), 10u);
  }
}

TEST(Scored, EndToEndL1ErrorBounded) {
  const std::size_t l1_diam = 8;
  const ScoredWorld w = planted_scored_clusters(128, 128, 4, 4, l1_diam, Rng(8));
  Population pop(128);
  Params params = Params::practical(4);
  const ScoredResult r = scored_calculate_preferences(w, pop, params, 9);
  // Threshold decomposition: error <= sum over 3 layers of O(D_layer),
  // and sum of layer diameters == L1 diameter.
  EXPECT_LE(scored_max_error(w, pop, r), 4 * l1_diam);
  EXPECT_GT(r.max_probes, 0u);
}

TEST(Scored, ToleratesSleepers) {
  const ScoredWorld w = planted_scored_clusters(128, 128, 4, 3, 6, Rng(10));
  Population pop(128);
  Rng rng(11);
  pop.corrupt_random(10, rng, [] { return std::make_unique<Sleeper>(); });
  Params params = Params::practical(4);
  const ScoredResult r = scored_calculate_preferences(w, pop, params, 12);
  EXPECT_LE(scored_max_error(w, pop, r), 5 * 6u);
}

TEST(Scored, BinaryLevelsMatchBinaryProtocolShape) {
  // levels=2 degenerates to the plain binary problem.
  const ScoredWorld w = planted_scored_clusters(128, 128, 4, 2, 8, Rng(13));
  Population pop(128);
  Params params = Params::practical(4);
  const ScoredResult r = scored_calculate_preferences(w, pop, params, 14);
  EXPECT_LE(scored_max_error(w, pop, r), 3 * 8u);
}

TEST(Scored, ProbeCostScalesWithLevels) {
  const ScoredWorld w3 = planted_scored_clusters(64, 64, 2, 3, 4, Rng(15));
  const ScoredWorld w5 = planted_scored_clusters(64, 64, 2, 5, 4, Rng(15));
  Population pop(64);
  Params params = Params::practical(2);
  const ScoredResult r3 = scored_calculate_preferences(w3, pop, params, 16);
  const ScoredResult r5 = scored_calculate_preferences(w5, pop, params, 16);
  // 4 layers vs 2 layers: ~2x probes.
  EXPECT_GT(r5.total_probes, r3.total_probes * 3 / 2);
}

}  // namespace
}  // namespace colscore
