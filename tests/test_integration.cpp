// Integration tests through the sim::run_experiment entry point — the same
// path benches and examples use.
#include "src/sim/experiment.hpp"

#include <gtest/gtest.h>

namespace colscore {
namespace {

TEST(Experiment, PlantedClustersEndToEnd) {
  ExperimentConfig config;
  config.n = 128;
  config.budget = 4;
  config.diameter = 8;
  config.seed = 1;
  const ExperimentOutcome out = run_experiment(config);
  EXPECT_EQ(out.honest_players, 128u);
  EXPECT_LE(out.error.max_error, 3 * 8u);
  EXPECT_GT(out.max_probes, 0u);
  EXPECT_GT(out.wall_seconds, 0.0);
}

TEST(Experiment, EveryWorkloadRuns) {
  for (WorkloadKind w :
       {WorkloadKind::kPlantedClusters, WorkloadKind::kIdenticalClusters,
        WorkloadKind::kLowerBound, WorkloadKind::kChained,
        WorkloadKind::kUniformRandom, WorkloadKind::kTwoBlocks}) {
    ExperimentConfig config;
    config.n = 64;
    config.budget = 4;
    config.diameter = 4;
    config.workload = w;
    config.seed = 2;
    config.compute_opt = false;
    const ExperimentOutcome out = run_experiment(config);
    EXPECT_EQ(out.honest_players, 64u) << ExperimentConfig::workload_name(w);
  }
}

TEST(Experiment, EveryAlgorithmRuns) {
  for (AlgorithmKind a :
       {AlgorithmKind::kCalculatePreferences, AlgorithmKind::kRobust,
        AlgorithmKind::kProbeAll, AlgorithmKind::kRandomGuess,
        AlgorithmKind::kOracleClusters, AlgorithmKind::kSampleAndShare}) {
    ExperimentConfig config;
    config.n = 64;
    config.budget = 4;
    config.diameter = 4;
    config.algorithm = a;
    config.seed = 3;
    config.robust_outer_reps = 2;
    config.compute_opt = false;
    const ExperimentOutcome out = run_experiment(config);
    EXPECT_EQ(out.honest_players, 64u) << ExperimentConfig::algorithm_name(a);
  }
}

TEST(Experiment, EveryAdversaryRuns) {
  for (AdversaryKind a :
       {AdversaryKind::kRandomLiar, AdversaryKind::kInverter,
        AdversaryKind::kConstantOne, AdversaryKind::kTargetedBias,
        AdversaryKind::kHijacker, AdversaryKind::kSleeper}) {
    ExperimentConfig config;
    config.n = 96;
    config.budget = 4;
    config.diameter = 6;
    config.adversary = a;
    config.dishonest = 8;  // n/(3B) = 8
    config.seed = 4;
    config.compute_opt = false;
    const ExperimentOutcome out = run_experiment(config);
    EXPECT_EQ(out.honest_players, 96u - 8u) << ExperimentConfig::adversary_name(a);
    EXPECT_LE(out.error.max_error, 30u) << ExperimentConfig::adversary_name(a);
  }
}

TEST(Experiment, RobustAlgorithmReportsLeaders) {
  ExperimentConfig config;
  config.n = 96;
  config.budget = 4;
  config.diameter = 6;
  config.algorithm = AlgorithmKind::kRobust;
  config.robust_outer_reps = 3;
  config.seed = 5;
  config.compute_opt = false;
  const ExperimentOutcome out = run_experiment(config);
  EXPECT_EQ(out.honest_leader_reps, 3u);  // all honest
}

TEST(Experiment, ProbeAllIsExact) {
  ExperimentConfig config;
  config.n = 64;
  config.budget = 4;
  config.algorithm = AlgorithmKind::kProbeAll;
  config.seed = 6;
  config.compute_opt = false;
  const ExperimentOutcome out = run_experiment(config);
  EXPECT_EQ(out.error.max_error, 0u);
  EXPECT_EQ(out.max_probes, 64u);
}

TEST(Experiment, OutcomeDeterministicInSeed) {
  ExperimentConfig config;
  config.n = 96;
  config.budget = 4;
  config.diameter = 8;
  config.seed = 7;
  config.compute_opt = false;
  const ExperimentOutcome a = run_experiment(config);
  const ExperimentOutcome b = run_experiment(config);
  EXPECT_EQ(a.error.max_error, b.error.max_error);
  EXPECT_EQ(a.total_probes, b.total_probes);
}

TEST(Experiment, SeedChangesOutcome) {
  ExperimentConfig config;
  config.n = 96;
  config.budget = 4;
  config.diameter = 8;
  config.compute_opt = false;
  config.seed = 8;
  const ExperimentOutcome a = run_experiment(config);
  config.seed = 9;
  const ExperimentOutcome b = run_experiment(config);
  // Different worlds -> almost surely different probe totals.
  EXPECT_NE(a.total_probes, b.total_probes);
}

TEST(Experiment, NamesAreStable) {
  EXPECT_EQ(ExperimentConfig::workload_name(WorkloadKind::kPlantedClusters),
            "planted");
  EXPECT_EQ(ExperimentConfig::adversary_name(AdversaryKind::kHijacker), "hijacker");
  EXPECT_EQ(ExperimentConfig::algorithm_name(AlgorithmKind::kRobust), "robust");
}

TEST(Experiment, ZipfSizesStillWork) {
  ExperimentConfig config;
  config.n = 128;
  config.budget = 4;
  config.diameter = 8;
  config.zipf_sizes = true;
  config.n_clusters = 3;
  config.seed = 10;
  config.compute_opt = false;
  const ExperimentOutcome out = run_experiment(config);
  // Zipf sizes can push small clusters below n/B; the protocol may degrade
  // for those players but must not crash, and big-cluster players stay good.
  EXPECT_EQ(out.honest_players, 128u);
}

TEST(Experiment, LowerBoundInstanceHonoursClaim2Shape) {
  // On the adversarial distribution, even our protocol cannot beat ~D/4 for
  // the pivot player: its group members are random on the special set.
  ExperimentConfig config;
  config.n = 128;
  config.budget = 8;
  config.diameter = 32;
  config.workload = WorkloadKind::kLowerBound;
  config.seed = 11;
  config.compute_opt = false;
  const ExperimentOutcome out = run_experiment(config);
  // The pivot group's predictions on S are majority-of-random: expected
  // error ~ D/2 for disagreeing members; Claim 2 lower bound is D/4.
  EXPECT_GE(out.error.max_error, 32u / 4);
}

}  // namespace
}  // namespace colscore
