// lint-fixture-as: src/metrics/fixture_ambient.cpp
// CL012: library loops name their ExecPolicy; the ambient spellings couple
// concurrent suites through process globals and bypass the policy-owned
// workspace arenas.
#include "src/common/exec_policy.hpp"
#include "src/common/thread_pool.hpp"
#include "src/common/workspace.hpp"

namespace colscore {

void fixture_ambient_execution(const ExecPolicy& policy, std::size_t n) {
  ThreadPool& pool = ThreadPool::global();           // VIOLATION
  parallel_for(0, n, [](std::size_t) {});            // VIOLATION
  RunWorkspace& ws = RunWorkspace::current();        // VIOLATION
  // colscore-lint: allow(CL012) fixture: documented unbound-thread fallback
  RunWorkspace& fallback = RunWorkspace::current();  // suppressed
  policy.par_for(0, n, [](std::size_t) {});          // sanctioned: fine
  (void)pool;
  (void)ws;
  (void)fallback;
}

// The PR 10 shape: a streaming epoch loop whose per-epoch fan-out grabs the
// ambient pool. Each epoch's delta sweep must run on the session's policy —
// an ambient spelling here couples every concurrent streaming session
// through one process pool, once per epoch.
void fixture_ambient_epoch_loop(const ExecPolicy& policy, std::size_t n,
                                std::size_t epochs) {
  for (std::size_t e = 0; e < epochs; ++e) {
    parallel_for(0, n, [](std::size_t) {});          // VIOLATION
    policy.par_for(0, n, [](std::size_t) {});        // sanctioned: fine
  }
}

}  // namespace colscore
