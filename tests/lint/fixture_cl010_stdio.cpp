// lint-fixture-as: src/sim/fixture_stdio.cpp
// CL010: library code writing to stdout corrupts CSV piped from the CLI and
// bypasses the sinks; diagnostics go through log.hpp.
#include <cstdio>
#include <iostream>

#include "src/common/log.hpp"

namespace colscore {

void fixture_stdio(std::size_t rows) {
  std::cout << "rows: " << rows << "\n";       // VIOLATION: corrupts CSV
  printf("rows: %zu\n", rows);                 // VIOLATION
  std::fprintf(stderr, "warning\n");           // VIOLATION
  log_warn("rows=", rows);                     // sanctioned: fine
  // colscore-lint: allow(CL010) fixture: interactive progress bar, written
  // to the operator terminal on purpose
  std::cerr << "[=====>    ]\r";               // suppressed
}

}  // namespace colscore
