// lint-fixture-as: src/protocols/fixture_raw_kernel.cpp
// CL011: hand-written XOR+popcount loops opt out of the SIMD dispatcher;
// distance code must go through the bitkernel entry points.
#include <bit>
#include <cstddef>
#include <cstdint>

#include "src/common/bitkernels.hpp"

namespace colscore {

std::size_t fixture_raw_hamming(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t words) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < words; ++i)
    total += std::popcount(a[i] ^ b[i]);  // VIOLATION: raw kernel loop
  return total;
}

std::size_t fixture_raw_builtin(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t words) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < words; ++i) {
    const std::uint64_t x = a[i] ^ b[i];
    total += static_cast<std::size_t>(__builtin_popcountll(x));  // VIOLATION
  }
  return total;
}

std::size_t fixture_dispatched_ok(const std::uint64_t* a, const std::uint64_t* b,
                                  std::size_t words) {
  return bitkernel::hamming(a, b, words);  // fine: dispatched entry point
}

std::size_t fixture_plain_popcount_ok(const std::uint64_t* w, std::size_t words) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < words; ++i)
    total += std::popcount(w[i]);  // fine: no XOR in the loop (not a distance)
  return total;
}

std::uint64_t fixture_xor_only_ok(const std::uint64_t* w, std::size_t words) {
  std::uint64_t h = 0;
  for (std::size_t i = 0; i < words; ++i) h ^= w[i];  // fine: no popcount
  return h;
}

}  // namespace colscore
