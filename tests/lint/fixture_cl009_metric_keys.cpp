// lint-fixture-as: src/protocols/fixture_metrics.cpp
// CL009: metric/param keys must appear as string literals at the call site
// so shadowing against the built-in columns is checkable without running
// registration code.
#include "src/sim/record.hpp"
#include "src/sim/registry.hpp"

namespace colscore {

static const char* kRoundsKey = "rounds";

void fixture_emit_keys(MetricEmitter& emit, const Scenario& scen) {
  emit.u64(kRoundsKey, 3);                           // VIOLATION: named const
  emit.f64(scen.extras.front().key, 0.5);            // VIOLATION: computed
  const std::size_t n = scen.extra_size(kRoundsKey, 4);  // VIOLATION
  emit.u64("rounds", 3);                             // literal: fine
  emit.size("players", n);                           // literal: fine
  // colscore-lint: allow(CL009) fixture: key forwarded verbatim from the
  // scenario extras table, already literal at its declaration site
  emit.string(kRoundsKey, "forwarded");              // suppressed
}

void fixture_record_keys(RunRecord& record, const Scenario& scen) {
  record.set_u64(kRoundsKey, 3);                     // VIOLATION: named const
  record.set_string(scen.extras.front().key, "x");   // VIOLATION: computed
  record.set_f64("mean_err", 0.5);                   // literal: fine
  record.set_size("n", 48);                          // literal: fine
  // A local helper that shares a setter's name is not a record write; only
  // receiver-qualified calls are keyed accesses.
  const auto set_size = [](const char*, std::size_t) {};
  set_size(kRoundsKey, 7);                           // no receiver: fine
}

}  // namespace colscore
