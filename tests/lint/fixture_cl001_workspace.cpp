// lint-fixture-as: src/protocols/work_share.cpp
// CL001: work_share owns the vt_ group; touching sel_/zr_ members from here
// aliases live nested-frame state.
#include "src/common/workspace.hpp"

namespace colscore {

void fixture_foreign_group() {
  // colscore-lint: allow(CL012) fixture: CL001 exercises group aliasing, not execution
  RunWorkspace& ws = RunWorkspace::current();
  ws.vt_offsets.clear();     // own group: fine
  ws.sel_diff.clear();       // VIOLATION: sel_ belongs to select.cpp
  ws.zr_batch_words.clear(); // VIOLATION: zr_ belongs to zero_radius.cpp
  // colscore-lint: allow(CL001) fixture: documented cross-group handoff
  ws.pf_coords.clear();      // suppressed
}

}  // namespace colscore
