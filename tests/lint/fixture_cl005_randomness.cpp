// lint-fixture-as: src/model/fixture_random.cpp
// CL005: ambient entropy, stdlib RNG facilities, and raw clock reads break
// fixed-seed reproducibility; everything derives from Rng/mix_keys + Timer.
#include <chrono>
#include <cstdlib>
#include <random>

#include "src/common/rng.hpp"

namespace colscore {

std::uint64_t fixture_ambient_randomness(std::uint64_t seed) {
  std::random_device entropy;                        // VIOLATION
  std::mt19937_64 engine(seed);                      // VIOLATION
  std::uniform_int_distribution<int> dist(0, 9);     // VIOLATION
  const int legacy = rand();                         // VIOLATION
  const auto t0 = std::chrono::steady_clock::now();  // VIOLATION
  Rng rng(mix_keys(seed, 0x5eedULL));                // sanctioned: fine
  // colscore-lint: allow(CL005) fixture: comparing against libc rand here
  const int compared = rand();                       // suppressed
  (void)entropy; (void)dist; (void)t0;
  return rng.next() + static_cast<std::uint64_t>(legacy + compared) +
         engine();
}

}  // namespace colscore
