// lint-fixture-as: src/scenarios/fixture_registry.cpp
// CL008: the description field in a registry entry IS the --list-* catalog
// text; an entry registered without one is undocumented at the CLI.
#include "src/sim/registry.hpp"

namespace colscore {

void fixture_register(Registry& reg, const ScenarioEntry& prebuilt) {
  reg.add("fixture-empty", {"", nullptr});          // VIOLATION: empty desc
  reg.add("fixture-missing", {});                   // VIOLATION: no desc
  // colscore-lint: allow(CL008) fixture: placeholder slot, the harness
  // fills the description before the catalog is printed
  reg.add("fixture-placeholder", {"", nullptr});    // suppressed
  reg.add("fixture-good",
          {"ring of overlapping taste groups", nullptr});  // fine
  reg.add("fixture-runtime", prebuilt);  // variable entry: runtime-checked
}

}  // namespace colscore
