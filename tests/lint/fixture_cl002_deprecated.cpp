// lint-fixture-as: src/protocols/fixture_probe.cpp
// CL002: the removed uint8-out batch probes must not reappear, under any
// spelling (declaration, call, or qualified mention).
#include "src/board/probe_oracle.hpp"

namespace colscore {

void fixture_deprecated_calls(ProbeOracle& oracle, ProtocolEnv& env,
                              std::span<const ObjectId> slate,
                              std::span<std::uint8_t> out) {
  oracle.probe_many(0, slate, out);    // VIOLATION
  env.own_probe_many(1, slate, out);   // VIOLATION
  BitVector bits(slate.size());
  env.own_probe_bits(1, slate, bits);  // the sanctioned form: fine
}

}  // namespace colscore
