// lint-fixture-as: src/sim/fixture_unordered.cpp
// CL007: hash iteration order is ABI-dependent; if it feeds output the
// fixed-seed goldens stop being byte-identical across toolchains.
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace colscore {

struct FixtureIndex {
  std::unordered_map<std::string, std::uint64_t> counts;
};

std::uint64_t fixture_unordered_iteration(const FixtureIndex& index) {
  std::uint64_t total = 0;
  for (const auto& [key, value] : index.counts) {  // VIOLATION
    total += value;
  }
  std::unordered_map<int, int> local;
  for (auto it = local.begin(); it != local.end(); ++it)  // VIOLATION
    total += it->second;
  // colscore-lint: allow(CL007) fixture: result is a sum, order-insensitive
  for (const auto& [key, value] : index.counts) total += value;  // suppressed
  std::map<std::string, std::uint64_t> ordered;
  ordered.emplace("total", total);
  for (const auto& [key, value] : ordered) total += value;  // ordered: fine
  return total;
}

}  // namespace colscore
