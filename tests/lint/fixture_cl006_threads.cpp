// lint-fixture-as: src/sim/fixture_threads.cpp
// CL006: raw threads bypass the pool's schedule-independent seeding and the
// per-worker RunWorkspace; all parallelism goes through an ExecPolicy.
#include <future>
#include <thread>

#include "src/common/exec_policy.hpp"

namespace colscore {

void fixture_raw_threads(const ExecPolicy& policy, std::size_t n) {
  std::thread worker([] {});                     // VIOLATION
  auto pending = std::async([] { return 1; });   // VIOLATION
  // colscore-lint: allow(CL006) fixture: watchdog thread, joins before exit
  std::thread watchdog([] {});                   // suppressed
  policy.par_for(0, n, [](std::size_t) {});      // sanctioned: fine
  worker.join();
  watchdog.join();
  pending.wait();
}

}  // namespace colscore
