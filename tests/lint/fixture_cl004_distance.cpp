// lint-fixture-as: src/protocols/fixture_distance.cpp
// CL004: a file already on the hot path (it calls the early-exit/scratch
// forms) must not mix in the full-scan or allocating distance calls.
#include "src/common/bitvector.hpp"

namespace colscore {

bool fixture_mixed_distance(ConstBitRow a, ConstBitRow b,
                            std::vector<std::size_t>& scratch) {
  if (a.hamming_exceeds(b, 10)) return true;   // hot form: fine
  const std::size_t d = a.hamming(b);          // VIOLATION: full scan
  a.diff_positions_into(b, scratch);           // hot form: fine
  auto positions = a.diff_positions(b);        // VIOLATION: allocates
  // colscore-lint: allow(CL004) fixture: exact count needed for a report
  const std::size_t exact = a.hamming(b);      // suppressed
  return d + positions.size() + exact > 0;
}

}  // namespace colscore
