// lint-fixture-as: src/sim/fixture_hygiene.cpp
// CL000: the suppression mechanism itself is linted -- malformed allow()
// comments and suppressions that no longer match anything are diagnostics,
// and lint hygiene cannot itself be suppressed.
#include <cstdlib>

namespace colscore {

std::uint64_t fixture_suppression_hygiene(std::uint64_t seed) {
  // colscore-lint: allow(CL005)
  std::uint64_t v = static_cast<std::uint64_t>(rand());  // reasonless: fires
  // colscore-lint: allow(CL999) rule id does not exist
  v ^= seed;
  // colscore-lint: allow() nothing listed
  v += 1;
  // colscore-lint: allow(CL000) trying to silence the lint police
  v += 2;
  // colscore-lint: disable CL005 wrong verb
  v += 3;
  // colscore-lint: allow(CL006) stale: no raw thread on this line
  v += 4;
  // colscore-lint: allow(CL005) fixture: deliberate libc rand comparison
  v += static_cast<std::uint64_t>(rand());  // suppressed: fine
  return v;
}

}  // namespace colscore
