// lint-fixture-as: src/protocols/fixture_serial.cpp
// CL003: single probes inside loops are only legal for genuinely adaptive
// elimination, and then only with a reasoned suppression.
#include "src/protocols/env.hpp"

namespace colscore {

void fixture_serial_loops(ProtocolEnv& env, ProbeOracle& oracle,
                          std::span<const ObjectId> slate, BitRow out) {
  for (std::size_t i = 0; i < slate.size(); ++i)
    out.set(i, env.own_probe(0, slate[i]));            // VIOLATION: known slate

  std::size_t coord = 0;
  while (coord < slate.size()) {
    const bool bit = oracle.probe(0, slate[coord]);    // VIOLATION (unsuppressed)
    coord = bit ? coord + 2 : coord + 1;
  }

  std::size_t pos = 0;
  while (pos < slate.size()) {
    // colscore-lint: allow(CL003) adaptive: the next coordinate depends on
    // the answer just read
    const bool bit = env.own_probe(0, slate[pos]);     // suppressed
    pos = bit ? pos + 2 : pos + 1;
  }

  env.own_probe_bits(0, slate, out);  // batched: fine
  const bool single = env.own_probe(0, slate.front());  // not in a loop: fine
  (void)single;
}

}  // namespace colscore
