#include "src/protocols/election.hpp"

#include <gtest/gtest.h>

#include <set>

#include "tests/test_util.hpp"

namespace colscore {
namespace {

using testutil::Harness;

TEST(Election, AllHonestElectsSomeone) {
  Harness h(identical_clusters(64, 64, 2, Rng(1)));
  const ElectionResult r = feige_election(h.env, 1);
  EXPECT_NE(r.leader, kInvalidPlayer);
  EXPECT_TRUE(r.leader_honest);
  EXPECT_GT(r.rounds, 0u);
}

TEST(Election, SinglePlayerTrivial) {
  Harness h(identical_clusters(1, 4, 1, Rng(2)));
  const ElectionResult r = feige_election(h.env, 2);
  EXPECT_EQ(r.leader, 0u);
  EXPECT_EQ(r.rounds, 0u);
}

TEST(Election, TwoPlayers) {
  Harness h(identical_clusters(2, 4, 1, Rng(3)));
  const ElectionResult r = feige_election(h.env, 3);
  EXPECT_NE(r.leader, kInvalidPlayer);
  EXPECT_LT(r.leader, 2u);
}

TEST(Election, DeterministicForSameKey) {
  Harness h1(identical_clusters(64, 64, 2, Rng(4)));
  Harness h2(identical_clusters(64, 64, 2, Rng(4)));
  const ElectionResult a = feige_election(h1.env, 9);
  const ElectionResult b = feige_election(h2.env, 9);
  EXPECT_EQ(a.leader, b.leader);
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(Election, DifferentKeysVaryLeader) {
  Harness h(identical_clusters(64, 64, 2, Rng(5)));
  std::set<PlayerId> leaders;
  for (std::uint64_t key = 0; key < 20; ++key)
    leaders.insert(feige_election(h.env, 100 + key).leader);
  EXPECT_GT(leaders.size(), 3u);  // election is actually randomized
}

TEST(Election, HonestMajorityWinsConstantFraction) {
  // §7.1: with dishonest fraction < 1/2, honest leaders win with constant
  // probability despite the rushing adversary.
  Harness h(identical_clusters(120, 16, 2, Rng(6)));
  Rng rng(7);
  h.population.corrupt_random(30, rng,  // 25% colluders
                              [] { return std::make_unique<Inverter>(); });
  std::size_t honest_wins = 0;
  const std::size_t trials = 60;
  for (std::uint64_t key = 0; key < trials; ++key)
    if (feige_election(h.env, 1000 + key).leader_honest) ++honest_wins;
  // Constant probability: demand at least 25% honest wins (population is
  // 75% honest; the rushing adversary erodes but cannot erase this).
  EXPECT_GE(honest_wins, trials / 4);
}

TEST(Election, AdversaryDoesGainFromRushing) {
  // The rushing adversary should win the leadership noticeably more often
  // than its population share under at least some configurations.
  Harness h(identical_clusters(100, 16, 2, Rng(8)));
  Rng rng(9);
  h.population.corrupt_random(33, rng, [] { return std::make_unique<Inverter>(); });
  std::size_t dishonest_wins = 0;
  const std::size_t trials = 60;
  for (std::uint64_t key = 0; key < trials; ++key)
    if (!feige_election(h.env, 5000 + key).leader_honest) ++dishonest_wins;
  EXPECT_GT(dishonest_wins, 0u);  // rushing is not a no-op
  EXPECT_LT(dishonest_wins, trials);  // but cannot always win
}

TEST(Election, BinLoadParameterRespected) {
  Harness h(identical_clusters(64, 16, 2, Rng(10)));
  ElectionParams params;
  params.bin_load = 4;
  const ElectionResult r = feige_election(h.env, 10, params);
  EXPECT_NE(r.leader, kInvalidPlayer);
  // Smaller bins -> more rounds than the default would need; at minimum the
  // protocol still terminates under max_rounds.
  EXPECT_LE(r.rounds, params.max_rounds);
}

TEST(Election, AllDishonestStillTerminates) {
  Harness h(identical_clusters(32, 8, 1, Rng(11)));
  Rng rng(12);
  h.population.corrupt_random(31, rng, [] { return std::make_unique<Inverter>(); });
  const ElectionResult r = feige_election(h.env, 11);
  EXPECT_NE(r.leader, kInvalidPlayer);
}

TEST(Election, PostsChoicesToBoard) {
  Harness h(identical_clusters(16, 8, 1, Rng(13)));
  feige_election(h.env, 20);
  // Round 0 posts one report per player.
  const std::uint64_t round0 = mix_keys(20, 0xe1ec7ULL, 0);
  EXPECT_GE(h.board.all_reports(round0).size(), 16u);
}

}  // namespace
}  // namespace colscore
