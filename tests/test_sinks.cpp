// Result-sink coverage: the sink registry, each built-in sink's format, and
// the equivalence contract — a fixed-seed suite run lands the exact same
// typed values in CSV, JSONL, and sqlite. The fixed-seed scenario and its
// golden row are shared with test_determinism_csv, so a sink that perturbs
// (or reorders, or re-formats) values fails against a pinned byte string,
// not against another sink's output. Since the typed-schema refactor the
// sinks store *values* (sqlite INTEGER/REAL, native JSON numbers); the
// comparisons below render those values through the one shared formatting
// path (RunRecord::cell_text / format_metric_double) and still demand the
// golden bytes.
#include "src/sim/sink.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "src/common/json.hpp"
#include "src/sim/suite.hpp"
#include "test_util.hpp"

#if defined(COLSCORE_HAVE_SQLITE)
#include <sqlite3.h>
#endif

namespace colscore {
namespace {

// The test_determinism_csv fixed-seed golden, shared via test_util.hpp.
using testutil::kGoldenRow;
using testutil::kGoldenScenario;
using testutil::split_csv_line;

/// The golden scenario's schema projected onto the default column set —
/// what every sink sees through RecordStream.
MetricSchema golden_schema() {
  const Scenario sc = Scenario::resolve(ScenarioSpec::parse(kGoldenScenario));
  const std::vector<std::string> columns = default_columns();
  return scenario_metric_schema(sc).select(columns);
}

/// Runs the golden scenario (serial, literal seed) through `sink` with the
/// default columns.
void run_golden_through(ResultSink& sink) {
  SuiteOptions options;
  options.threads = 1;
  options.derive_seeds = false;
  const Scenario sc = Scenario::resolve(ScenarioSpec::parse(kGoldenScenario));
  const MetricSchema schema = scenario_metric_schema(sc);
  const std::vector<std::string> columns = default_columns();
  RecordStream stream(sink, schema, columns);
  options.on_result = [&](const SuiteRun& run) {
    stream.write(make_run_record(run, schema));
  };
  SuiteRunner(options).run({ScenarioSpec::parse(kGoldenScenario)});
  stream.finish();
}

TEST(SinkRegistry, ListsBuiltins) {
  EXPECT_TRUE(SinkRegistry::instance().contains("csv"));
  EXPECT_TRUE(SinkRegistry::instance().contains("jsonl"));
#if defined(COLSCORE_HAVE_SQLITE)
  EXPECT_TRUE(SinkRegistry::instance().contains("sqlite"));
#endif
}

TEST(SinkRegistry, UnknownSinkNamesTheAlternatives) {
  try {
    (void)make_sink("parquet", {});
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown sink 'parquet'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("csv"), std::string::npos) << msg;
  }
}

TEST(CsvSinkTest, MatchesTheDeterminismGolden) {
  std::ostringstream out;
  SinkConfig config;
  config.stream = &out;
  CsvSink sink(config);
  run_golden_through(sink);
  EXPECT_EQ(sink.rows_written(), 1u);
  std::istringstream lines(out.str());
  std::string header, row;
  ASSERT_TRUE(std::getline(lines, header));
  ASSERT_TRUE(std::getline(lines, row));
  EXPECT_EQ(row, kGoldenRow);
}

TEST(CsvSinkTest, RejectsUnwritablePaths) {
  SinkConfig config;
  config.path = "/nonexistent-dir/out.csv";
  EXPECT_THROW(CsvSink{config}, ScenarioError);
}

TEST(JsonlSinkTest, NativeNumbersSpellTheCsvCells) {
  std::ostringstream out;
  SinkConfig config;
  config.stream = &out;
  JsonlSink sink(config);
  run_golden_through(sink);
  EXPECT_EQ(sink.rows_written(), 1u);

  std::istringstream lines(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_FALSE(std::getline(lines, line = ""));  // exactly one row, no header

  std::istringstream first(out.str());
  ASSERT_TRUE(std::getline(first, line));
  const JsonValue row = json_parse(line);
  ASSERT_TRUE(row.is_object());
  const MetricSchema schema = golden_schema();
  const std::vector<std::string> golden = split_csv_line(kGoldenRow);
  ASSERT_EQ(row.members.size(), schema.size());
  ASSERT_EQ(golden.size(), schema.size());
  for (std::size_t i = 0; i < schema.size(); ++i) {
    const MetricSpec& spec = schema.spec(i);
    // Keys in column order; numeric columns are native JSON numbers whose
    // source spelling is the exact CSV cell (one formatting path).
    EXPECT_EQ(row.members[i].first, spec.key);
    if (row.members[i].second.is_null()) {
      // Absent cells (the ok row's empty `error`) are JSON null; CSV spells
      // them as the empty cell.
      EXPECT_EQ(golden[i], "") << spec.key;
      continue;
    }
    EXPECT_EQ(row.members[i].second.text, golden[i]) << spec.key;
    const bool numeric = spec.type == MetricType::kU64 ||
                         spec.type == MetricType::kSize ||
                         spec.type == MetricType::kF64;
    EXPECT_EQ(row.members[i].second.is_number(), numeric) << spec.key;
    EXPECT_EQ(row.members[i].second.is_string(),
              spec.type == MetricType::kString)
        << spec.key;
  }
}

#if defined(COLSCORE_HAVE_SQLITE)

/// Reads every `runs` row back as cell text: typed values are rendered
/// through the same formatting rules as RunRecord::cell_text, so a correct
/// typed store reproduces the CSV bytes exactly (including u64 values past
/// 2^63, which sqlite holds as the same two's-complement bit pattern).
std::vector<std::vector<std::string>> read_rows_as_cells(
    const std::string& path, const MetricSchema& schema) {
  sqlite3* db = nullptr;
  EXPECT_EQ(sqlite3_open(path.c_str(), &db), SQLITE_OK);
  sqlite3_stmt* stmt = nullptr;
  EXPECT_EQ(sqlite3_prepare_v2(db, "SELECT * FROM runs ORDER BY rowid", -1,
                               &stmt, nullptr),
            SQLITE_OK);
  std::vector<std::vector<std::string>> rows;
  while (sqlite3_step(stmt) == SQLITE_ROW) {
    EXPECT_EQ(static_cast<std::size_t>(sqlite3_column_count(stmt)),
              schema.size());
    std::vector<std::string> cells;
    for (int c = 0; c < sqlite3_column_count(stmt); ++c) {
      if (sqlite3_column_type(stmt, c) == SQLITE_NULL) {
        cells.emplace_back();
        continue;
      }
      const MetricSpec& spec = schema.spec(static_cast<std::size_t>(c));
      switch (spec.type) {
        case MetricType::kString:
          cells.emplace_back(
              reinterpret_cast<const char*>(sqlite3_column_text(stmt, c)));
          break;
        case MetricType::kU64:
        case MetricType::kSize:
          cells.push_back(std::to_string(
              static_cast<std::uint64_t>(sqlite3_column_int64(stmt, c))));
          break;
        case MetricType::kBool:
          cells.emplace_back(sqlite3_column_int(stmt, c) != 0 ? "1" : "0");
          break;
        case MetricType::kF64:
          cells.push_back(format_metric_double(sqlite3_column_double(stmt, c),
                                               spec.f64_format));
          break;
      }
    }
    rows.push_back(std::move(cells));
  }
  sqlite3_finalize(stmt);
  sqlite3_close(db);
  return rows;
}

/// `PRAGMA table_info` declared type of every `runs` column.
std::vector<std::string> read_column_affinities(const std::string& path) {
  sqlite3* db = nullptr;
  EXPECT_EQ(sqlite3_open(path.c_str(), &db), SQLITE_OK);
  sqlite3_stmt* stmt = nullptr;
  EXPECT_EQ(sqlite3_prepare_v2(db, "PRAGMA table_info(runs)", -1, &stmt,
                               nullptr),
            SQLITE_OK);
  std::vector<std::string> types;
  while (sqlite3_step(stmt) == SQLITE_ROW)
    types.emplace_back(
        reinterpret_cast<const char*>(sqlite3_column_text(stmt, 2)));
  sqlite3_finalize(stmt);
  sqlite3_close(db);
  return types;
}

TEST(SqliteSinkTest, TypedColumnsMatchTheCsvCells) {
  const std::string path = testing::TempDir() + "colscore_sink_golden.sqlite";
  std::remove(path.c_str());
  {
    SinkConfig config;
    config.path = path;
    SqliteSink sink(config);
    run_golden_through(sink);
    EXPECT_EQ(sink.rows_written(), 1u);
  }
  const MetricSchema schema = golden_schema();
  const auto rows = read_rows_as_cells(path, schema);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], split_csv_line(kGoldenRow));

  // The acceptance point: real column affinities, not all-TEXT.
  const std::vector<std::string> affinities = read_column_affinities(path);
  ASSERT_EQ(affinities.size(), schema.size());
  for (std::size_t i = 0; i < schema.size(); ++i) {
    switch (schema.spec(i).type) {
      case MetricType::kU64:
      case MetricType::kSize:
      case MetricType::kBool:
        EXPECT_EQ(affinities[i], "INTEGER") << schema.spec(i).key;
        break;
      case MetricType::kF64:
        EXPECT_EQ(affinities[i], "REAL") << schema.spec(i).key;
        break;
      case MetricType::kString:
        EXPECT_EQ(affinities[i], "TEXT") << schema.spec(i).key;
        break;
    }
  }
  std::remove(path.c_str());
}

TEST(SqliteSinkTest, RerunReplacesTheRunsTable) {
  const std::string path = testing::TempDir() + "colscore_sink_rerun.sqlite";
  std::remove(path.c_str());
  MetricSchema schema;
  schema.add({"a", MetricType::kString, "", "test"});
  schema.add({"b", MetricType::kString, "", "test"});
  for (int i = 0; i < 2; ++i) {
    SinkConfig config;
    config.path = path;
    SqliteSink sink(config);
    sink.begin(schema);
    RunRecord record(&schema);
    record.set_string("a", "1");
    record.set_string("b", "2");
    sink.write(record);
    sink.finish();
  }
  // Dropped and recreated, not appended.
  EXPECT_EQ(read_rows_as_cells(path, schema).size(), 1u);
  std::remove(path.c_str());
}

TEST(SqliteSinkTest, RequiresAnOutputPath) {
  try {
    (void)make_sink("sqlite", {});
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    EXPECT_NE(std::string(e.what()).find("writes a database file"),
              std::string::npos)
        << e.what();
  }
}

#endif  // COLSCORE_HAVE_SQLITE

// ---- cross-sink equivalence (the satellite acceptance) ----------------------

TEST(SinkEquivalence, FixedSeedSuiteIsIdenticalAcrossSinks) {
  // A small multi-cell suite with reps: every sink must observe the exact
  // same typed values in the exact same order. Derived seeds are full
  // 64-bit, so this also exercises u64 columns past 2^63 through sqlite's
  // signed INTEGER storage.
  SuiteOptions options;
  options.threads = 1;
  options.reps = 2;
  const std::vector<ScenarioSpec> specs = expand_grid(
      ScenarioSpec::parse("n=48 budget=4 dishonest=4 opt=0"),
      parse_grid("adversary=none,sleeper"));
  std::vector<Scenario> resolved;
  for (const ScenarioSpec& spec : specs) resolved.push_back(Scenario::resolve(spec));
  const MetricSchema schema = suite_metric_schema(resolved);
  const std::vector<std::string> columns =
      default_columns(false, /*include_rep=*/true);

  auto run_collecting = [&](ResultSink& sink) {
    SuiteOptions local = options;
    RecordStream stream(sink, schema, columns);
    local.on_result = [&](const SuiteRun& run) {
      stream.write(make_run_record(run, schema));
    };
    SuiteRunner(local).run(specs);
    stream.finish();
  };

  std::ostringstream csv_out;
  SinkConfig csv_config;
  csv_config.stream = &csv_out;
  CsvSink csv_sink(csv_config);
  run_collecting(csv_sink);

  std::ostringstream jsonl_out;
  SinkConfig jsonl_config;
  jsonl_config.stream = &jsonl_out;
  JsonlSink jsonl_sink(jsonl_config);
  run_collecting(jsonl_sink);

  // Collect CSV data rows (skip the header).
  std::vector<std::vector<std::string>> csv_rows;
  {
    std::istringstream lines(csv_out.str());
    std::string line;
    ASSERT_TRUE(std::getline(lines, line));  // header
    while (std::getline(lines, line)) csv_rows.push_back(split_csv_line(line));
  }
  ASSERT_EQ(csv_rows.size(), 4u);  // 2 cells x 2 reps

  // JSONL rows carry the same cell spellings in the same order (native
  // numbers keep the CSV text as their source spelling).
  std::vector<std::vector<std::string>> jsonl_rows;
  {
    std::istringstream lines(jsonl_out.str());
    std::string line;
    while (std::getline(lines, line)) {
      const JsonValue row = json_parse(line);
      std::vector<std::string> cells;
      for (const auto& [key, value] : row.members)
        cells.push_back(value.is_null() ? "" : value.text);
      jsonl_rows.push_back(std::move(cells));
    }
  }
  EXPECT_EQ(jsonl_rows, csv_rows);

#if defined(COLSCORE_HAVE_SQLITE)
  const std::string path = testing::TempDir() + "colscore_sink_equiv.sqlite";
  std::remove(path.c_str());
  {
    SinkConfig config;
    config.path = path;
    SqliteSink sqlite_sink(config);
    run_collecting(sqlite_sink);
  }
  EXPECT_EQ(read_rows_as_cells(path, schema.select(columns)), csv_rows);
  std::remove(path.c_str());
#endif
}

}  // namespace
}  // namespace colscore
