// Result-sink coverage: the sink registry, each built-in sink's format, and
// the equivalence contract — a fixed-seed suite run lands the exact same row
// contents in CSV, JSONL, and sqlite. The fixed-seed scenario and its golden
// row are shared with test_determinism_csv, so a sink that perturbs (or
// reorders, or re-formats) cells fails against a pinned byte string, not
// against another sink's output.
#include "src/sim/sink.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "src/common/json.hpp"
#include "src/sim/suite.hpp"
#include "test_util.hpp"

#if defined(COLSCORE_HAVE_SQLITE)
#include <sqlite3.h>
#endif

namespace colscore {
namespace {

// The test_determinism_csv fixed-seed golden, shared via test_util.hpp.
using testutil::kGoldenRow;
using testutil::kGoldenScenario;

/// Runs the golden scenario (serial, literal seed) through `sink`.
void run_golden_through(ResultSink& sink) {
  SuiteOptions options;
  options.threads = 1;
  options.derive_seeds = false;
  sink.begin(suite_csv_columns());
  options.on_result = [&](const SuiteRun& run) {
    sink.write_row(suite_row_cells(run));
  };
  SuiteRunner(options).run({ScenarioSpec::parse(kGoldenScenario)});
  sink.finish();
}

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::stringstream in(line);
  std::string cell;
  while (std::getline(in, cell, ',')) cells.push_back(cell);
  return cells;
}

TEST(SinkRegistry, ListsBuiltins) {
  EXPECT_TRUE(SinkRegistry::instance().contains("csv"));
  EXPECT_TRUE(SinkRegistry::instance().contains("jsonl"));
#if defined(COLSCORE_HAVE_SQLITE)
  EXPECT_TRUE(SinkRegistry::instance().contains("sqlite"));
#endif
}

TEST(SinkRegistry, UnknownSinkNamesTheAlternatives) {
  try {
    (void)make_sink("parquet", {});
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown sink 'parquet'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("csv"), std::string::npos) << msg;
  }
}

TEST(CsvSinkTest, MatchesTheDeterminismGolden) {
  std::ostringstream out;
  SinkConfig config;
  config.stream = &out;
  CsvSink sink(config);
  run_golden_through(sink);
  EXPECT_EQ(sink.rows_written(), 1u);
  std::istringstream lines(out.str());
  std::string header, row;
  ASSERT_TRUE(std::getline(lines, header));
  ASSERT_TRUE(std::getline(lines, row));
  EXPECT_EQ(row, kGoldenRow);
}

TEST(CsvSinkTest, RejectsUnwritablePaths) {
  SinkConfig config;
  config.path = "/nonexistent-dir/out.csv";
  EXPECT_THROW(CsvSink{config}, ScenarioError);
}

TEST(JsonlSinkTest, RowContentsMatchTheCsvCells) {
  std::ostringstream out;
  SinkConfig config;
  config.stream = &out;
  JsonlSink sink(config);
  run_golden_through(sink);
  EXPECT_EQ(sink.rows_written(), 1u);

  std::istringstream lines(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_FALSE(std::getline(lines, line = ""));  // exactly one row, no header

  std::istringstream first(out.str());
  ASSERT_TRUE(std::getline(first, line));
  const JsonValue row = json_parse(line);
  ASSERT_TRUE(row.is_object());
  const std::vector<std::string> columns = suite_csv_columns();
  const std::vector<std::string> golden = split_csv_line(kGoldenRow);
  ASSERT_EQ(row.members.size(), columns.size());
  ASSERT_EQ(golden.size(), columns.size());
  for (std::size_t i = 0; i < columns.size(); ++i) {
    // Keys in column order, values the exact CSV cell strings.
    EXPECT_EQ(row.members[i].first, columns[i]);
    EXPECT_EQ(row.members[i].second.text, golden[i]) << columns[i];
  }
}

#if defined(COLSCORE_HAVE_SQLITE)

std::vector<std::vector<std::string>> read_all_rows(const std::string& path) {
  sqlite3* db = nullptr;
  EXPECT_EQ(sqlite3_open(path.c_str(), &db), SQLITE_OK);
  sqlite3_stmt* stmt = nullptr;
  EXPECT_EQ(sqlite3_prepare_v2(db, "SELECT * FROM runs ORDER BY rowid", -1,
                               &stmt, nullptr),
            SQLITE_OK);
  std::vector<std::vector<std::string>> rows;
  while (sqlite3_step(stmt) == SQLITE_ROW) {
    std::vector<std::string> cells;
    for (int c = 0; c < sqlite3_column_count(stmt); ++c)
      cells.emplace_back(
          reinterpret_cast<const char*>(sqlite3_column_text(stmt, c)));
    rows.push_back(std::move(cells));
  }
  sqlite3_finalize(stmt);
  sqlite3_close(db);
  return rows;
}

TEST(SqliteSinkTest, RowContentsMatchTheCsvCells) {
  const std::string path = testing::TempDir() + "colscore_sink_golden.sqlite";
  std::remove(path.c_str());
  {
    SinkConfig config;
    config.path = path;
    SqliteSink sink(config);
    run_golden_through(sink);
    EXPECT_EQ(sink.rows_written(), 1u);
  }
  const auto rows = read_all_rows(path);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], split_csv_line(kGoldenRow));
  std::remove(path.c_str());
}

TEST(SqliteSinkTest, RerunReplacesTheRunsTable) {
  const std::string path = testing::TempDir() + "colscore_sink_rerun.sqlite";
  std::remove(path.c_str());
  for (int i = 0; i < 2; ++i) {
    SinkConfig config;
    config.path = path;
    SqliteSink sink(config);
    sink.begin({"a", "b"});
    sink.write_row({"1", "2"});
    sink.finish();
  }
  EXPECT_EQ(read_all_rows(path).size(), 1u);  // dropped and recreated, not appended
  std::remove(path.c_str());
}

TEST(SqliteSinkTest, RequiresAnOutputPath) {
  try {
    (void)make_sink("sqlite", {});
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    EXPECT_NE(std::string(e.what()).find("writes a database file"),
              std::string::npos)
        << e.what();
  }
}

#endif  // COLSCORE_HAVE_SQLITE

// ---- cross-sink equivalence (the satellite acceptance) ----------------------

TEST(SinkEquivalence, FixedSeedSuiteIsIdenticalAcrossSinks) {
  // A small multi-cell suite with reps: every sink must observe the exact
  // same cell strings in the exact same order.
  SuiteOptions options;
  options.threads = 1;
  options.reps = 2;
  const std::vector<ScenarioSpec> specs = expand_grid(
      ScenarioSpec::parse("n=48 budget=4 dishonest=4 opt=0"),
      parse_grid("adversary=none,sleeper"));

  auto run_collecting = [&](ResultSink& sink) {
    SuiteOptions local = options;
    sink.begin(suite_csv_columns(false, /*include_rep=*/true));
    local.on_result = [&](const SuiteRun& run) {
      sink.write_row(suite_row_cells(run, false, /*include_rep=*/true));
    };
    SuiteRunner(local).run(specs);
    sink.finish();
  };

  std::ostringstream csv_out;
  SinkConfig csv_config;
  csv_config.stream = &csv_out;
  CsvSink csv_sink(csv_config);
  run_collecting(csv_sink);

  std::ostringstream jsonl_out;
  SinkConfig jsonl_config;
  jsonl_config.stream = &jsonl_out;
  JsonlSink jsonl_sink(jsonl_config);
  run_collecting(jsonl_sink);

  // Collect CSV data rows (skip the header).
  std::vector<std::vector<std::string>> csv_rows;
  {
    std::istringstream lines(csv_out.str());
    std::string line;
    ASSERT_TRUE(std::getline(lines, line));  // header
    while (std::getline(lines, line)) csv_rows.push_back(split_csv_line(line));
  }
  ASSERT_EQ(csv_rows.size(), 4u);  // 2 cells x 2 reps

  // JSONL rows carry the same cells in the same order.
  std::vector<std::vector<std::string>> jsonl_rows;
  {
    std::istringstream lines(jsonl_out.str());
    std::string line;
    while (std::getline(lines, line)) {
      const JsonValue row = json_parse(line);
      std::vector<std::string> cells;
      for (const auto& [key, value] : row.members) cells.push_back(value.text);
      jsonl_rows.push_back(std::move(cells));
    }
  }
  EXPECT_EQ(jsonl_rows, csv_rows);

#if defined(COLSCORE_HAVE_SQLITE)
  const std::string path = testing::TempDir() + "colscore_sink_equiv.sqlite";
  std::remove(path.c_str());
  {
    SinkConfig config;
    config.path = path;
    SqliteSink sqlite_sink(config);
    run_collecting(sqlite_sink);
  }
  EXPECT_EQ(read_all_rows(path), csv_rows);
  std::remove(path.c_str());
#endif
}

}  // namespace
}  // namespace colscore
