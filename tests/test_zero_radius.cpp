#include "src/protocols/zero_radius.hpp"

#include <gtest/gtest.h>

#include "tests/test_util.hpp"

namespace colscore {
namespace {

using testutil::Harness;

TEST(ZeroRadius, BaseCaseIsExact) {
  Harness h(identical_clusters(16, 16, 4, Rng(1)));
  ZeroRadiusParams params;
  params.budget = 4;  // base threshold 4*4*log2(16) >= universe
  const auto players = h.all_players();
  const auto objects = h.all_objects();
  const ZeroRadiusResult r = zero_radius(players, objects, params, h.env, 1);
  ASSERT_EQ(r.outputs.size(), players.size());
  for (std::size_t i = 0; i < players.size(); ++i)
    EXPECT_EQ(r.outputs[i], h.world.matrix.row(players[i]));
  EXPECT_EQ(r.stats.base_case_players, players.size());
}

TEST(ZeroRadius, ExactRecoveryWithIdenticalTwins) {
  // Theorem 4: with >= n/B' identical twins per player, output == v(p) whp.
  Harness h(identical_clusters(512, 512, 2, Rng(2)));
  ZeroRadiusParams params;
  params.budget = 2;
  const auto players = h.all_players();
  const auto objects = h.all_objects();
  const ZeroRadiusResult r = zero_radius(players, objects, params, h.env, 2);
  std::size_t wrong = 0;
  for (std::size_t i = 0; i < players.size(); ++i)
    if (r.outputs[i] != h.world.matrix.row(players[i])) ++wrong;
  EXPECT_EQ(wrong, 0u);
  EXPECT_GE(r.stats.max_depth, 2u);  // recursion actually happened
}

TEST(ZeroRadius, RecursionSavesProbes) {
  // Probe complexity O(B' log n) per player vs |O| for probing everything.
  Harness h(identical_clusters(512, 512, 2, Rng(3)));
  ZeroRadiusParams params;
  params.budget = 2;
  const auto players = h.all_players();
  const auto objects = h.all_objects();
  zero_radius(players, objects, params, h.env, 3);
  EXPECT_LT(h.env.oracle.max_probes(), 512u / 2);
  EXPECT_LT(h.env.oracle.total_probes() / 512, 256u);
}

TEST(ZeroRadius, EmptyInputsReturnEmpty) {
  Harness h(identical_clusters(8, 8, 2, Rng(4)));
  ZeroRadiusParams params;
  const std::vector<PlayerId> no_players;
  const std::vector<ObjectId> no_objects;
  const auto players = h.all_players();
  EXPECT_TRUE(zero_radius(no_players, h.all_objects(), params, h.env, 4)
                  .outputs.empty());
  const ZeroRadiusResult r = zero_radius(players, no_objects, params, h.env, 5);
  ASSERT_EQ(r.outputs.size(), players.size());
  for (const auto& v : r.outputs) EXPECT_EQ(v.size(), 0u);
}

TEST(ZeroRadius, SubsetOfPlayersAndObjects) {
  Harness h(identical_clusters(64, 64, 2, Rng(5)));
  ZeroRadiusParams params;
  params.budget = 2;
  std::vector<PlayerId> players;
  for (PlayerId p = 0; p < 64; p += 2) players.push_back(p);
  std::vector<ObjectId> objects;
  for (ObjectId o = 10; o < 40; ++o) objects.push_back(o);
  const ZeroRadiusResult r = zero_radius(players, objects, params, h.env, 6);
  ASSERT_EQ(r.outputs.size(), players.size());
  for (std::size_t i = 0; i < players.size(); ++i) {
    ASSERT_EQ(r.outputs[i].size(), objects.size());
    for (std::size_t j = 0; j < objects.size(); ++j)
      EXPECT_EQ(r.outputs[i].get(j), h.world.matrix.preference(players[i], objects[j]));
  }
}

TEST(ZeroRadius, ToleratesLiars) {
  // Dishonest publishers below the support threshold cannot fool the filter;
  // honest outputs stay exact.
  Harness h(identical_clusters(512, 512, 2, Rng(6)));
  Rng rng(7);
  h.population.corrupt_random(40, rng, [] { return std::make_unique<RandomLiar>(); });
  ZeroRadiusParams params;
  params.budget = 2;
  const auto players = h.all_players();
  const auto objects = h.all_objects();
  const ZeroRadiusResult r = zero_radius(players, objects, params, h.env, 7);
  std::size_t honest_wrong = 0;
  for (std::size_t i = 0; i < players.size(); ++i) {
    if (!h.population.is_honest(players[i])) continue;
    if (r.outputs[i] != h.world.matrix.row(players[i])) ++honest_wrong;
  }
  EXPECT_EQ(honest_wrong, 0u);
}

TEST(ZeroRadius, ToleratesInvertersUpToBound) {
  Harness h(identical_clusters(512, 512, 2, Rng(8)));
  Rng rng(9);
  // n/(3B') = 512/6 ~ 85 inverters.
  h.population.corrupt_random(85, rng, [] { return std::make_unique<Inverter>(); });
  ZeroRadiusParams params;
  params.budget = 2;
  const auto players = h.all_players();
  const ZeroRadiusResult r =
      zero_radius(players, h.all_objects(), params, h.env, 8);
  std::size_t honest_wrong = 0;
  for (std::size_t i = 0; i < players.size(); ++i) {
    if (!h.population.is_honest(players[i])) continue;
    if (r.outputs[i] != h.world.matrix.row(players[i])) ++honest_wrong;
  }
  EXPECT_EQ(honest_wrong, 0u);
}

TEST(ZeroRadius, DeterministicForSameKeys) {
  Harness h1(identical_clusters(64, 64, 2, Rng(10)));
  Harness h2(identical_clusters(64, 64, 2, Rng(10)));
  ZeroRadiusParams params;
  params.budget = 2;
  const auto players = h1.all_players();
  const auto objects = h1.all_objects();
  const auto r1 = zero_radius(players, objects, params, h1.env, 42);
  const auto r2 = zero_radius(players, objects, params, h2.env, 42);
  for (std::size_t i = 0; i < players.size(); ++i)
    EXPECT_EQ(r1.outputs[i], r2.outputs[i]);
}

TEST(ZeroRadius, NoisyInvocationFallsBackGracefully) {
  // ZeroRadius has NO O(D) guarantee when the identical-twins precondition
  // is broken — support fragments because near-twins publish distinct
  // vectors. (That failure mode is exactly why SmallRadius wraps ZeroRadius
  // in small object subsets, Theorem 5.) What the fallback must guarantee is
  // containment: outputs stay far better than random guessing and the
  // protocol neither crashes nor exhausts budgets.
  Harness h(planted_clusters(512, 512, 2, 8, Rng(11)));
  ZeroRadiusParams params;
  params.budget = 2;
  const auto players = h.all_players();
  const ZeroRadiusResult r =
      zero_radius(players, h.all_objects(), params, h.env, 9);
  std::size_t max_err = 0;
  double mean_err = 0;
  for (std::size_t i = 0; i < players.size(); ++i) {
    const std::size_t e = h.world.matrix.row(players[i]).hamming(r.outputs[i]);
    max_err = std::max(max_err, e);
    mean_err += static_cast<double>(e);
  }
  mean_err /= static_cast<double>(players.size());
  EXPECT_LT(max_err, 512u / 3);   // contained (random guessing would be ~256)
  EXPECT_LT(mean_err, 512.0 / 8); // and typical players are far better
}

TEST(ZeroRadius, TooDeepRecursionDetectable) {
  // Failure injection: forcing recursion far below the sound threshold
  // (base_factor << 1) breaks cluster representation and produces wrong
  // outputs — evidence that the Θ(B' log n) base case is load-bearing.
  Harness h(identical_clusters(128, 128, 4, Rng(12)));
  ZeroRadiusParams params;
  params.budget = 4;
  params.base_factor = 0.25;  // recurse down to ~7 players
  params.verify_probes = 1;   // and disable the repair safety net
  const auto players = h.all_players();
  const ZeroRadiusResult r =
      zero_radius(players, h.all_objects(), params, h.env, 10);
  std::size_t wrong = 0;
  for (std::size_t i = 0; i < players.size(); ++i)
    if (r.outputs[i] != h.world.matrix.row(players[i])) ++wrong;
  EXPECT_GT(wrong, 0u);
}

TEST(ZeroRadiusStats, MergeAccumulates) {
  ZeroRadiusStats a, b;
  a.base_case_players = 3;
  a.fallbacks = 1;
  a.max_depth = 2;
  b.base_case_players = 4;
  b.empty_support = 5;
  b.repairs = 2;
  b.max_depth = 7;
  a.merge(b);
  EXPECT_EQ(a.base_case_players, 7u);
  EXPECT_EQ(a.fallbacks, 1u);
  EXPECT_EQ(a.empty_support, 5u);
  EXPECT_EQ(a.repairs, 2u);
  EXPECT_EQ(a.max_depth, 7u);
}

class ZeroRadiusBudgetSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ZeroRadiusBudgetSweep, ExactForAllBudgets) {
  const std::size_t budget = GetParam();
  Harness h(identical_clusters(512, 512, budget, Rng(20 + budget)));
  ZeroRadiusParams params;
  params.budget = budget;
  const auto players = h.all_players();
  const ZeroRadiusResult r =
      zero_radius(players, h.all_objects(), params, h.env, 21);
  for (std::size_t i = 0; i < players.size(); ++i)
    EXPECT_EQ(r.outputs[i], h.world.matrix.row(players[i])) << "budget=" << budget;
}

INSTANTIATE_TEST_SUITE_P(Budgets, ZeroRadiusBudgetSweep, ::testing::Values(2, 4, 8));

}  // namespace
}  // namespace colscore
